#include "src/compress/lossy.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>

#include "src/common/crc32.h"
#include "src/compress/compress_kernels.h"
#include "src/compress/lossless.h"

namespace sand {
namespace {

constexpr uint8_t kMagic[4] = {'S', 'C', 'O', '1'};
constexpr size_t kContainerHeader = 16;
constexpr uint8_t kFlagSharedBasis = 0x01;

constexpr size_t kFrameHeaderBytes = 12;  // h, w, c (u32 LE) — Frame::Serialize
constexpr size_t kBatchHeaderBytes = 20;  // n, f, h, w, c (u32 LE)

constexpr size_t kMaxBaseHints = 4096;
constexpr size_t kMaxCachedBases = 32;

uint64_t NowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

void PutU8(std::vector<uint8_t>& out, uint8_t v) { out.push_back(v); }
void PutU16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
}
void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}
void PutF32(std::vector<uint8_t>& out, float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU32(out, bits);
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (static_cast<uint16_t>(p[1]) << 8));
}
uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(p[i]) << (8 * i);
  }
  return v;
}
float GetF32(const uint8_t* p) {
  uint32_t bits = GetU32(p);
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// Bounds-checked cursor over a codec payload.
class Reader {
 public:
  explicit Reader(std::span<const uint8_t> data) : data_(data) {}

  bool ReadU8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) return false;
    *v = data_[pos_++];
    return true;
  }
  bool ReadU16(uint16_t* v) {
    if (pos_ + 2 > data_.size()) return false;
    *v = GetU16(data_.data() + pos_);
    pos_ += 2;
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) return false;
    *v = GetU32(data_.data() + pos_);
    pos_ += 4;
    return true;
  }
  bool ReadF32(float* v) {
    if (pos_ + 4 > data_.size()) return false;
    *v = GetF32(data_.data() + pos_);
    pos_ += 4;
    return true;
  }
  bool ReadBytes(size_t n, std::span<const uint8_t>* out) {
    if (pos_ + n > data_.size()) return false;
    *out = data_.subspan(pos_, n);
    pos_ += n;
    return true;
  }
  std::span<const uint8_t> Rest() const { return data_.subspan(pos_); }

 private:
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

// Pixel-buffer shape sniffed from a serialized Frame or batch header. A
// wrong guess is harmless: the decoded bytes still round-trip exactly for
// lossless, and the lossy codecs only apply to keys the policy classified
// as frame data in the first place.
struct PixelShape {
  size_t prefix = 0;     // serialized header bytes copied through verbatim
  uint32_t height = 0;   // rows of one frame
  uint32_t width = 0;    // columns of one frame
  uint32_t channels = 0; // interleaved channels
  size_t pixel_bytes = 0;
};

bool SaneDim(uint32_t v, uint32_t max) { return v >= 1 && v <= max; }

std::optional<PixelShape> SniffFrame(std::span<const uint8_t> raw) {
  if (raw.size() < kFrameHeaderBytes) return std::nullopt;
  const uint32_t h = GetU32(raw.data());
  const uint32_t w = GetU32(raw.data() + 4);
  const uint32_t c = GetU32(raw.data() + 8);
  if (!SaneDim(h, 65535) || !SaneDim(w, 65535) || !SaneDim(c, 8)) return std::nullopt;
  const uint64_t body = static_cast<uint64_t>(h) * w * c;
  if (raw.size() != kFrameHeaderBytes + body) return std::nullopt;
  return PixelShape{kFrameHeaderBytes, h, w, c, static_cast<size_t>(body)};
}

std::optional<PixelShape> SniffBatch(std::span<const uint8_t> raw) {
  if (raw.size() < kBatchHeaderBytes) return std::nullopt;
  const uint32_t n = GetU32(raw.data());
  const uint32_t f = GetU32(raw.data() + 4);
  const uint32_t h = GetU32(raw.data() + 8);
  const uint32_t w = GetU32(raw.data() + 12);
  const uint32_t c = GetU32(raw.data() + 16);
  if (!SaneDim(n, 1u << 20) || !SaneDim(f, 1u << 20) || !SaneDim(h, 65535) ||
      !SaneDim(w, 65535) || !SaneDim(c, 8)) {
    return std::nullopt;
  }
  const uint64_t body = static_cast<uint64_t>(n) * f * h * w * c;
  if (raw.size() != kBatchHeaderBytes + body) return std::nullopt;
  return PixelShape{kBatchHeaderBytes, h, w, c, static_cast<size_t>(body)};
}

std::optional<PixelShape> SniffPixels(std::span<const uint8_t> raw) {
  if (auto frame = SniffFrame(raw)) return frame;
  return SniffBatch(raw);
}

// Container framing: magic | codec u8 | flags u8 | reserved u16 |
// raw_size u32 | raw_crc32 u32 | payload.
std::vector<uint8_t> StartContainer(Codec codec, uint8_t flags, uint32_t raw_size) {
  std::vector<uint8_t> out;
  out.reserve(kContainerHeader);
  for (uint8_t m : kMagic) {
    PutU8(out, m);
  }
  PutU8(out, static_cast<uint8_t>(codec));
  PutU8(out, flags);
  PutU16(out, 0);
  PutU32(out, raw_size);
  PutU32(out, 0);  // raw_crc32 patched by SealContainer
  return out;
}

// `decoded_crc` is the CRC of the bytes Decode will reproduce — the raw
// input for lossless, the deterministic reconstruction for lossy codecs.
void SealContainer(std::vector<uint8_t>& out, uint32_t decoded_crc) {
  out[12] = static_cast<uint8_t>(decoded_crc);
  out[13] = static_cast<uint8_t>(decoded_crc >> 8);
  out[14] = static_cast<uint8_t>(decoded_crc >> 16);
  out[15] = static_cast<uint8_t>(decoded_crc >> 24);
}

struct ContainerHeader {
  Codec codec = Codec::kNone;
  uint8_t flags = 0;
  uint32_t raw_size = 0;
  uint32_t raw_crc = 0;
};

std::optional<ContainerHeader> ParseContainer(std::span<const uint8_t> bytes) {
  if (bytes.size() < kContainerHeader) return std::nullopt;
  if (std::memcmp(bytes.data(), kMagic, 4) != 0) return std::nullopt;
  const uint8_t codec = bytes[4];
  if (codec < 1 || codec > 3) return std::nullopt;
  ContainerHeader hdr;
  hdr.codec = static_cast<Codec>(codec);
  hdr.flags = bytes[5];
  hdr.raw_size = GetU32(bytes.data() + 8);
  hdr.raw_crc = GetU32(bytes.data() + 12);
  return hdr;
}

// Symmetric int8 quantization of a float vector: scale = max|x| / 127.
// Codes are stored biased by 128 so the payload stays plain uint8.
float QuantizeF32Vector(std::span<const float> in, std::vector<uint8_t>& out) {
  float max_abs = 0.0f;
  for (float v : in) {
    max_abs = std::max(max_abs, std::fabs(v));
  }
  const float scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
  const float inv = 1.0f / scale;
  for (float v : in) {
    float q = v * inv;
    q = q < -127.0f ? -127.0f : (q > 127.0f ? 127.0f : q);
    const int code = static_cast<int>(q < 0.0f ? q - 0.5f : q + 0.5f);
    out.push_back(static_cast<uint8_t>(code + 128));
  }
  return scale;
}

void DequantizeF32Vector(std::span<const uint8_t> codes, float scale, std::span<float> out) {
  for (size_t i = 0; i < codes.size(); ++i) {
    out[i] = static_cast<float>(static_cast<int>(codes[i]) - 128) * scale;
  }
}

}  // namespace

const char* CodecName(Codec codec) {
  switch (codec) {
    case Codec::kNone:
      return "none";
    case Codec::kLossless:
      return "lossless";
    case Codec::kQuant8:
      return "quant8";
    case Codec::kSvd:
      return "svd";
  }
  return "unknown";
}

std::optional<Codec> CodecFromName(std::string_view name) {
  if (name == "none") return Codec::kNone;
  if (name == "lossless") return Codec::kLossless;
  if (name == "quant8") return Codec::kQuant8;
  if (name == "svd") return Codec::kSvd;
  return std::nullopt;
}

ObjectClass ClassifyCacheKey(std::string_view key) {
  if (key.size() >= 5 && key.substr(key.size() - 5) == "/view") {
    return ObjectClass::kBatch;
  }
  constexpr std::string_view kCachePrefix = "cache/";
  if (key.substr(0, kCachePrefix.size()) == kCachePrefix) {
    // "cache/<video>/f<idx>/n<hash>" vs "cache/<video>/a<idx>/n<hash>".
    const size_t slash = key.find('/', kCachePrefix.size());
    if (slash != std::string_view::npos && slash + 1 < key.size() && key[slash + 1] == 'a') {
      return ObjectClass::kAugFrame;
    }
    return ObjectClass::kFrame;
  }
  return ObjectClass::kOpaque;
}

Codec CompressionPolicy::CodecFor(ObjectClass cls) const {
  switch (cls) {
    case ObjectClass::kFrame:
      return frame_codec;
    case ObjectClass::kAugFrame:
      return aug_codec;
    case ObjectClass::kBatch:
      return batch_codec;
    case ObjectClass::kOpaque:
      return opaque_codec;
  }
  return Codec::kNone;
}

ObjectCodec::ObjectCodec(CompressionPolicy policy) : policy_(policy) {
  auto& reg = obs::Registry::Get();
  bytes_saved_ = reg.GetCounter("sand.compress.bytes_saved");
  raw_bytes_ = reg.GetCounter("sand.compress.encoded_raw_bytes");
  encoded_bytes_ = reg.GetCounter("sand.compress.encoded_bytes");
  hits_ = reg.GetCounter("sand.compress.hits");
  encode_fallbacks_ = reg.GetCounter("sand.compress.fallbacks");
  ratio_x1000_ = reg.GetGauge("sand.compress.ratio_x1000");
  encode_ns_ = reg.GetHistogram("sand.compress.encode_ns");
  decode_ns_ = reg.GetHistogram("sand.compress.decode_ns");
}

void ObjectCodec::set_base_fetcher(BaseObjectFetcher fetcher) {
  std::lock_guard<std::mutex> lock(fetcher_mutex_);
  base_fetcher_ = std::move(fetcher);
}

void ObjectCodec::NoteBaseObject(const std::string& key, const std::string& base_key) {
  if (key == base_key || key.empty() || base_key.empty()) {
    return;
  }
  std::lock_guard<std::mutex> lock(hints_mutex_);
  auto [it, inserted] = base_hints_.emplace(key, base_key);
  if (!inserted) {
    it->second = base_key;
    return;
  }
  hint_order_.push_back(key);
  if (hint_order_.size() > kMaxBaseHints) {
    base_hints_.erase(hint_order_.front());
    hint_order_.pop_front();
  }
}

bool ObjectCodec::IsEncoded(std::span<const uint8_t> bytes) {
  return ParseContainer(bytes).has_value();
}

double ObjectCodec::CumulativeRatio() const {
  const uint64_t encoded = encoded_total_.load(std::memory_order_relaxed);
  if (encoded == 0) {
    return 1.0;
  }
  return static_cast<double>(raw_total_.load(std::memory_order_relaxed)) /
         static_cast<double>(encoded);
}

Result<std::optional<EncodeResult>> ObjectCodec::Encode(const std::string& key,
                                                        std::span<const uint8_t> raw) {
  const Codec codec = policy_.CodecFor(ClassifyCacheKey(key));
  if (codec == Codec::kNone || raw.size() < policy_.min_object_bytes ||
      raw.size() > UINT32_MAX || IsEncoded(raw)) {
    return std::optional<EncodeResult>(std::nullopt);
  }

  const uint64_t start = NowNs();
  Result<std::optional<EncodeResult>> result = Status();
  switch (codec) {
    case Codec::kLossless:
      result = EncodeLossless(raw);
      break;
    case Codec::kQuant8:
      result = EncodeQuant(raw);
      break;
    case Codec::kSvd:
      result = EncodeSvd(key, raw);
      break;
    case Codec::kNone:
      return std::optional<EncodeResult>(std::nullopt);
  }
  if (!result.ok()) {
    return result.status();
  }
  encode_ns_->Record(NowNs() - start);

  if (result->has_value() && (*result)->bytes.size() >= raw.size()) {
    // Encoding did not shrink the object; store raw.
    result = std::optional<EncodeResult>(std::nullopt);
  }
  if (result->has_value()) {
    const uint64_t encoded_size = (*result)->bytes.size();
    raw_total_.fetch_add(raw.size(), std::memory_order_relaxed);
    encoded_total_.fetch_add(encoded_size, std::memory_order_relaxed);
    raw_bytes_->Add(raw.size());
    encoded_bytes_->Add(encoded_size);
    bytes_saved_->Add(raw.size() - encoded_size);
    ratio_x1000_->Set(static_cast<int64_t>(CumulativeRatio() * 1000.0));
  }
  return result;
}

Result<std::vector<uint8_t>> ObjectCodec::Decode(std::span<const uint8_t> bytes) {
  const auto hdr = ParseContainer(bytes);
  if (!hdr) {
    return InvalidArgument("Decode: not an SCO1 container");
  }
  const uint64_t start = NowNs();
  const std::span<const uint8_t> payload = bytes.subspan(kContainerHeader);

  Result<std::vector<uint8_t>> decoded = Status();
  switch (hdr->codec) {
    case Codec::kLossless:
      decoded = DecodeLossless(payload, hdr->raw_size);
      break;
    case Codec::kQuant8:
      decoded = DecodeQuant(payload, hdr->raw_size);
      break;
    case Codec::kSvd:
      decoded = DecodeSvd(payload, hdr->raw_size, (hdr->flags & kFlagSharedBasis) != 0);
      break;
    case Codec::kNone:
      return InvalidArgument("Decode: codec none is never framed");
  }
  if (!decoded.ok()) {
    return decoded.status();
  }
  if (decoded->size() != hdr->raw_size) {
    return DataLoss("Decode: size mismatch against container header");
  }
  if (Crc32(std::span<const uint8_t>(*decoded)) != hdr->raw_crc) {
    return DataLoss("Decode: CRC mismatch on decoded bytes");
  }
  decode_ns_->Record(NowNs() - start);
  hits_->Add();
  return decoded;
}

// --- lossless ----------------------------------------------------------------
//
// Payload: u16 prefix_len | prefix bytes | LosslessCompress(body, stride).
// The prefix (a Frame/batch header, when present) is copied verbatim so the
// row stride lines up with pixel rows.

Result<std::optional<EncodeResult>> ObjectCodec::EncodeLossless(std::span<const uint8_t> raw) {
  size_t prefix = 0;
  size_t stride = raw.size();
  if (auto shape = SniffPixels(raw)) {
    prefix = shape->prefix;
    stride = static_cast<size_t>(shape->width) * shape->channels;
  }
  const std::span<const uint8_t> body = raw.subspan(prefix);
  SAND_ASSIGN_OR_RETURN(std::vector<uint8_t> compressed, LosslessCompress(body, stride));

  std::vector<uint8_t> out =
      StartContainer(Codec::kLossless, 0, static_cast<uint32_t>(raw.size()));
  PutU16(out, static_cast<uint16_t>(prefix));
  out.insert(out.end(), raw.begin(), raw.begin() + prefix);
  out.insert(out.end(), compressed.begin(), compressed.end());
  SealContainer(out, Crc32(raw));
  EncodeResult result;
  result.bytes = std::move(out);
  result.codec = Codec::kLossless;
  return std::optional<EncodeResult>(std::move(result));
}

Result<std::vector<uint8_t>> ObjectCodec::DecodeLossless(std::span<const uint8_t> payload,
                                                         size_t raw_size) {
  Reader r(payload);
  uint16_t prefix_len = 0;
  std::span<const uint8_t> prefix;
  if (!r.ReadU16(&prefix_len) || !r.ReadBytes(prefix_len, &prefix)) {
    return DataLoss("lossless payload truncated");
  }
  if (prefix_len > raw_size) {
    return DataLoss("lossless prefix longer than raw object");
  }
  SAND_ASSIGN_OR_RETURN(std::vector<uint8_t> body, LosslessDecompress(r.Rest()));
  std::vector<uint8_t> out;
  out.reserve(raw_size);
  out.insert(out.end(), prefix.begin(), prefix.end());
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

// --- quant8 ------------------------------------------------------------------
//
// Payload: u8 bits | u8 channels | u16 prefix_len | u32 pixels_per_plane |
// prefix bytes | channels x (f32 scale, f32 zero) |
// LosslessCompress(packed codes).
//
// Planes are the deinterleaved channels of the whole pixel body (one frame
// or a full batch — the layout repeats identically), quantized to
// 2^bits levels against a per-plane affine (scale, zero-point) map.

Result<std::optional<EncodeResult>> ObjectCodec::EncodeQuant(std::span<const uint8_t> raw) {
  const auto shape = SniffPixels(raw);
  if (!shape) {
    // Not pixel data; exact fallback keeps the object safe to serve.
    encode_fallbacks_->Add();
    return EncodeLossless(raw);
  }
  const int bits = policy_.params.quant_bits <= 4 ? 4 : 8;
  const int levels = 1 << bits;
  const uint32_t channels = shape->channels;
  const size_t pixels = shape->pixel_bytes / channels;
  const std::span<const uint8_t> body = raw.subspan(shape->prefix);

  std::vector<uint8_t> out =
      StartContainer(Codec::kQuant8, 0, static_cast<uint32_t>(raw.size()));
  PutU8(out, static_cast<uint8_t>(bits));
  PutU8(out, static_cast<uint8_t>(channels));
  PutU16(out, static_cast<uint16_t>(shape->prefix));
  PutU32(out, static_cast<uint32_t>(pixels));
  out.insert(out.end(), raw.begin(), raw.begin() + shape->prefix);

  std::vector<uint8_t> plane(pixels);
  std::vector<uint8_t> codes(shape->pixel_bytes);
  // The reconstruction mirrors what Decode computes so the container CRC is
  // of the bytes a hit will actually observe.
  std::vector<uint8_t> recon(raw.size());
  std::copy(raw.begin(), raw.begin() + shape->prefix, recon.begin());
  const std::span<uint8_t> recon_body(recon.data() + shape->prefix, shape->pixel_bytes);

  for (uint32_t c = 0; c < channels; ++c) {
    DeinterleavePlane(body, static_cast<int>(channels), static_cast<int>(c),
                      std::span<uint8_t>(plane));
    uint8_t lo = 0;
    uint8_t hi = 0;
    PlaneMinMax(plane, &lo, &hi);
    const float zero = static_cast<float>(lo);
    const float scale =
        hi > lo ? static_cast<float>(hi - lo) / static_cast<float>(levels - 1) : 1.0f;
    PutF32(out, scale);
    PutF32(out, zero);
    const std::span<uint8_t> code_slice(codes.data() + static_cast<size_t>(c) * pixels,
                                        pixels);
    QuantizePlane(plane, scale, zero, levels, code_slice);
    DequantizePlane(code_slice, scale, zero, std::span<uint8_t>(plane));
    InterleavePlane(plane, static_cast<int>(channels), static_cast<int>(c), recon_body);
  }

  std::vector<uint8_t> packed;
  if (bits == 4) {
    packed.resize((codes.size() + 1) / 2);
    PackNibbles(codes, packed);
  } else {
    packed = std::move(codes);
  }
  SAND_ASSIGN_OR_RETURN(std::vector<uint8_t> compressed,
                        LosslessCompress(packed, packed.size()));
  out.insert(out.end(), compressed.begin(), compressed.end());
  SealContainer(out, Crc32(recon));
  EncodeResult result;
  result.bytes = std::move(out);
  result.codec = Codec::kQuant8;
  return std::optional<EncodeResult>(std::move(result));
}

Result<std::vector<uint8_t>> ObjectCodec::DecodeQuant(std::span<const uint8_t> payload,
                                                      size_t raw_size) {
  Reader r(payload);
  uint8_t bits = 0;
  uint8_t channels = 0;
  uint16_t prefix_len = 0;
  uint32_t pixels = 0;
  std::span<const uint8_t> prefix;
  if (!r.ReadU8(&bits) || !r.ReadU8(&channels) || !r.ReadU16(&prefix_len) ||
      !r.ReadU32(&pixels) || !r.ReadBytes(prefix_len, &prefix)) {
    return DataLoss("quant payload truncated");
  }
  if ((bits != 4 && bits != 8) || channels == 0 ||
      prefix_len + static_cast<uint64_t>(pixels) * channels != raw_size) {
    return DataLoss("quant payload geometry inconsistent");
  }
  std::vector<float> scales(channels);
  std::vector<float> zeros(channels);
  for (uint8_t c = 0; c < channels; ++c) {
    if (!r.ReadF32(&scales[c]) || !r.ReadF32(&zeros[c])) {
      return DataLoss("quant payload truncated in plane params");
    }
  }
  SAND_ASSIGN_OR_RETURN(std::vector<uint8_t> packed, LosslessDecompress(r.Rest()));
  const size_t total = static_cast<size_t>(pixels) * channels;
  std::vector<uint8_t> codes;
  if (bits == 4) {
    if (packed.size() != (total + 1) / 2) {
      return DataLoss("quant packed size mismatch");
    }
    codes.resize(total);
    UnpackNibbles(packed, codes);
  } else {
    if (packed.size() != total) {
      return DataLoss("quant code size mismatch");
    }
    codes = std::move(packed);
  }

  std::vector<uint8_t> out(raw_size);
  std::copy(prefix.begin(), prefix.end(), out.begin());
  const std::span<uint8_t> body(out.data() + prefix_len, total);
  std::vector<uint8_t> plane(pixels);
  for (uint8_t c = 0; c < channels; ++c) {
    const std::span<const uint8_t> code_slice(codes.data() + static_cast<size_t>(c) * pixels,
                                              pixels);
    DequantizePlane(code_slice, scales[c], zeros[c], std::span<uint8_t>(plane));
    InterleavePlane(plane, channels, c, body);
  }
  return out;
}

// --- svd ---------------------------------------------------------------------
//
// Payload: u8 rank | u8 channels | u16 h | u16 w | u16 reserved |
// channels x f32 mean |
//   shared: u16 base_key_len | base_key
//   self:   rank x (f32 v_scale, w x int8 v-codes)
// channels x rank x (f32 u_scale, h x int8 u-codes)
//
// The basis V (rank orthonormal w-vectors) comes from deterministic power
// iteration over the channel-averaged, mean-centered plane. Shared-basis
// objects omit V: decode refetches the base object and recomputes the
// identical basis (the iteration is single-threaded with left-to-right
// reductions, so identical bytes give identical floats).

namespace {

// Power-iteration basis of the channel-averaged float matrix. Deterministic
// by construction; rows are prefix-stable in rank (row r never depends on
// rows > r), so a higher-rank basis serves lower-rank requests.
void PowerIterationBasis(std::vector<float> a, size_t rows, size_t cols, int rank, int iters,
                        std::vector<float>& v_out) {
  v_out.assign(static_cast<size_t>(rank) * cols, 0.0f);
  std::vector<float> v(cols);
  std::vector<float> u(rows);
  for (int r = 0; r < rank; ++r) {
    const std::span<float> v_row(v_out.data() + static_cast<size_t>(r) * cols, cols);
    // Deterministic start: the normalized ones vector.
    const float init = 1.0f / std::sqrt(static_cast<float>(cols));
    std::fill(v.begin(), v.end(), init);
    bool degenerate = false;
    for (int it = 0; it < iters; ++it) {
      MatVec(a, rows, cols, v, u);
      MatTVec(a, rows, cols, u, v);
      // Orthogonalize against the accepted rows, then normalize.
      for (int j = 0; j < r; ++j) {
        const std::span<const float> prev(v_out.data() + static_cast<size_t>(j) * cols, cols);
        const float d = DotF32(v, prev);
        for (size_t k = 0; k < cols; ++k) {
          v[k] -= d * prev[k];
        }
      }
      const float norm = std::sqrt(DotF32(v, v));
      if (norm < 1e-6f) {
        degenerate = true;
        break;
      }
      const float inv = 1.0f / norm;
      for (float& x : v) {
        x *= inv;
      }
    }
    if (degenerate) {
      // Residual is (numerically) zero in every remaining direction; fall
      // back to a unit vector so the basis stays orthonormal.
      std::fill(v.begin(), v.end(), 0.0f);
      v[static_cast<size_t>(r) % cols] = 1.0f;
      for (int j = 0; j < r; ++j) {
        const std::span<const float> prev(v_out.data() + static_cast<size_t>(j) * cols, cols);
        const float d = DotF32(v, prev);
        for (size_t k = 0; k < cols; ++k) {
          v[k] -= d * prev[k];
        }
      }
      const float norm = std::sqrt(DotF32(v, v));
      if (norm > 1e-6f) {
        const float inv = 1.0f / norm;
        for (float& x : v) {
          x *= inv;
        }
      } else {
        std::fill(v.begin(), v.end(), 0.0f);
      }
    }
    std::copy(v.begin(), v.end(), v_row.begin());
    MatVec(a, rows, cols, v, u);
    SubtractOuter(a, rows, cols, u, v);  // deflate
  }
}

// Channel-averaged, mean-centered float plane of a serialized frame.
void CenteredAveragePlane(std::span<const uint8_t> body, uint32_t h, uint32_t w, uint32_t c,
                          std::vector<float>& out) {
  const size_t pixels = static_cast<size_t>(h) * w;
  out.assign(pixels, 0.0f);
  const float inv_c = 1.0f / static_cast<float>(c);
  for (size_t i = 0; i < pixels; ++i) {
    float acc = 0.0f;
    for (uint32_t ch = 0; ch < c; ++ch) {
      acc += static_cast<float>(body[i * c + ch]);
    }
    out[i] = acc * inv_c;
  }
  float mean = 0.0f;
  for (float v : out) {
    mean += v;
  }
  mean /= static_cast<float>(pixels);
  for (float& v : out) {
    v -= mean;
  }
}

}  // namespace

Result<std::shared_ptr<const ObjectCodec::Basis>> ObjectCodec::BasisFor(
    const std::string& base_key, int rank) {
  {
    std::lock_guard<std::mutex> lock(basis_mutex_);
    auto it = basis_cache_.find(base_key);
    if (it != basis_cache_.end() && it->second->rank >= rank) {
      basis_order_.remove(base_key);
      basis_order_.push_back(base_key);
      return it->second;
    }
  }
  BaseObjectFetcher fetcher;
  {
    std::lock_guard<std::mutex> lock(fetcher_mutex_);
    fetcher = base_fetcher_;
  }
  if (!fetcher) {
    return NotFound("shared-basis decode: no base fetcher attached");
  }
  SAND_ASSIGN_OR_RETURN(SharedBytes base, fetcher(base_key));
  const auto shape = SniffFrame(std::span<const uint8_t>(*base));
  if (!shape) {
    return FailedPrecondition("shared-basis base object is not a serialized frame");
  }
  auto basis = std::make_shared<Basis>();
  basis->rank = std::min<int>(rank, std::min(shape->height, shape->width));
  basis->width = static_cast<int>(shape->width);
  std::vector<float> a;
  CenteredAveragePlane(std::span<const uint8_t>(*base).subspan(shape->prefix), shape->height,
                       shape->width, shape->channels, a);
  PowerIterationBasis(std::move(a), shape->height, shape->width, basis->rank,
                      policy_.params.svd_power_iters, basis->v);
  if (basis->rank < rank) {
    return FailedPrecondition("base frame too small for requested rank");
  }
  std::shared_ptr<const Basis> shared = std::move(basis);
  {
    std::lock_guard<std::mutex> lock(basis_mutex_);
    basis_order_.remove(base_key);
    basis_cache_[base_key] = shared;
    basis_order_.push_back(base_key);
    while (basis_order_.size() > kMaxCachedBases) {
      basis_cache_.erase(basis_order_.front());
      basis_order_.pop_front();
    }
  }
  return shared;
}

Result<std::optional<EncodeResult>> ObjectCodec::EncodeSvd(const std::string& key,
                                                           std::span<const uint8_t> raw) {
  const auto shape = SniffFrame(raw);
  if (!shape) {
    encode_fallbacks_->Add();
    return EncodeLossless(raw);
  }
  const uint32_t h = shape->height;
  const uint32_t w = shape->width;
  const uint32_t c = shape->channels;
  const int rank =
      std::max(1, std::min<int>(policy_.params.svd_rank, std::min(h, w)));

  std::string base_key;
  {
    std::lock_guard<std::mutex> lock(hints_mutex_);
    auto it = base_hints_.find(key);
    if (it != base_hints_.end()) {
      base_key = it->second;
    }
  }
  std::shared_ptr<const Basis> shared_basis;
  if (!base_key.empty()) {
    auto basis = BasisFor(base_key, rank);
    if (basis.ok() && (*basis)->width == static_cast<int>(w)) {
      shared_basis = *basis;
    }
  }

  // Basis rows used for projection AND reconstruction. Shared: exact floats
  // (decode recomputes them). Self-contained: the dequantized stored rows,
  // so encode-side reconstruction matches what decode will compute.
  std::vector<float> v_rows(static_cast<size_t>(rank) * w);
  std::vector<uint8_t> v_payload;  // rank x (f32 scale + w codes), self only
  if (shared_basis) {
    std::copy(shared_basis->v.begin(),
              shared_basis->v.begin() + static_cast<size_t>(rank) * w, v_rows.begin());
  } else {
    std::vector<float> a;
    CenteredAveragePlane(raw.subspan(shape->prefix), h, w, c, a);
    std::vector<float> exact;
    PowerIterationBasis(std::move(a), h, w, rank, policy_.params.svd_power_iters, exact);
    std::vector<uint8_t> codes;
    for (int r = 0; r < rank; ++r) {
      const std::span<const float> row(exact.data() + static_cast<size_t>(r) * w, w);
      codes.clear();
      const float scale = QuantizeF32Vector(row, codes);
      PutF32(v_payload, scale);
      v_payload.insert(v_payload.end(), codes.begin(), codes.end());
      DequantizeF32Vector(codes, scale,
                          std::span<float>(v_rows.data() + static_cast<size_t>(r) * w, w));
    }
  }

  std::vector<uint8_t> out = StartContainer(
      Codec::kSvd, shared_basis ? kFlagSharedBasis : 0, static_cast<uint32_t>(raw.size()));
  PutU8(out, static_cast<uint8_t>(rank));
  PutU8(out, static_cast<uint8_t>(c));
  PutU16(out, static_cast<uint16_t>(h));
  PutU16(out, static_cast<uint16_t>(w));
  PutU16(out, 0);

  const size_t pixels = static_cast<size_t>(h) * w;
  const std::span<const uint8_t> body = raw.subspan(shape->prefix);
  std::vector<uint8_t> plane(pixels);
  std::vector<float> p(pixels);
  std::vector<float> means(c);
  for (uint32_t ch = 0; ch < c; ++ch) {
    DeinterleavePlane(body, static_cast<int>(c), static_cast<int>(ch),
                      std::span<uint8_t>(plane));
    float mean = 0.0f;
    for (uint8_t v : plane) {
      mean += static_cast<float>(v);
    }
    means[ch] = mean / static_cast<float>(pixels);
    PutF32(out, means[ch]);
  }

  if (shared_basis) {
    PutU16(out, static_cast<uint16_t>(base_key.size()));
    out.insert(out.end(), base_key.begin(), base_key.end());
  } else {
    out.insert(out.end(), v_payload.begin(), v_payload.end());
  }

  // Per-plane coefficients, plus the decode-identical reconstruction for the
  // container CRC.
  std::vector<uint8_t> recon(raw.size());
  std::copy(raw.begin(), raw.begin() + shape->prefix, recon.begin());
  const std::span<uint8_t> recon_body(recon.data() + shape->prefix, body.size());
  std::vector<float> u(h);
  std::vector<float> u_deq(h);
  std::vector<float> recon_plane(pixels);
  std::vector<uint8_t> u_codes;
  for (uint32_t ch = 0; ch < c; ++ch) {
    DeinterleavePlane(body, static_cast<int>(c), static_cast<int>(ch),
                      std::span<uint8_t>(plane));
    PlaneToFloat(plane, p);
    for (float& v : p) {
      v -= means[ch];
    }
    std::fill(recon_plane.begin(), recon_plane.end(), means[ch]);
    for (int r = 0; r < rank; ++r) {
      const std::span<const float> v_row(v_rows.data() + static_cast<size_t>(r) * w, w);
      MatVec(p, h, w, v_row, u);
      u_codes.clear();
      const float scale = QuantizeF32Vector(u, u_codes);
      PutF32(out, scale);
      out.insert(out.end(), u_codes.begin(), u_codes.end());
      DequantizeF32Vector(u_codes, scale, u_deq);
      AddOuter(recon_plane, h, w, u_deq, v_row);
    }
    FloatToPlane(recon_plane, plane);
    InterleavePlane(plane, static_cast<int>(c), static_cast<int>(ch), recon_body);
  }
  SealContainer(out, Crc32(recon));
  EncodeResult result;
  result.bytes = std::move(out);
  result.codec = Codec::kSvd;
  result.shared_basis = shared_basis != nullptr;
  return std::optional<EncodeResult>(std::move(result));
}

Result<std::vector<uint8_t>> ObjectCodec::DecodeSvd(std::span<const uint8_t> payload,
                                                    size_t raw_size, bool shared) {
  Reader r(payload);
  uint8_t rank = 0;
  uint8_t channels = 0;
  uint16_t h = 0;
  uint16_t w = 0;
  uint16_t reserved = 0;
  if (!r.ReadU8(&rank) || !r.ReadU8(&channels) || !r.ReadU16(&h) || !r.ReadU16(&w) ||
      !r.ReadU16(&reserved)) {
    return DataLoss("svd payload truncated");
  }
  if (rank == 0 || channels == 0 || h == 0 || w == 0 ||
      raw_size != kFrameHeaderBytes + static_cast<uint64_t>(h) * w * channels) {
    return DataLoss("svd payload geometry inconsistent");
  }
  std::vector<float> means(channels);
  for (uint8_t ch = 0; ch < channels; ++ch) {
    if (!r.ReadF32(&means[ch])) {
      return DataLoss("svd payload truncated in means");
    }
  }

  std::vector<float> v_rows(static_cast<size_t>(rank) * w);
  if (shared) {
    uint16_t key_len = 0;
    std::span<const uint8_t> key_bytes;
    if (!r.ReadU16(&key_len) || !r.ReadBytes(key_len, &key_bytes)) {
      return DataLoss("svd payload truncated in base key");
    }
    const std::string base_key(reinterpret_cast<const char*>(key_bytes.data()),
                               key_bytes.size());
    auto basis = BasisFor(base_key, rank);
    if (!basis.ok()) {
      // The base object is gone or unreadable; surface as a miss upstream.
      return NotFound("shared-basis base object unavailable: " +
                      basis.status().message());
    }
    if ((*basis)->width != static_cast<int>(w) || (*basis)->rank < rank) {
      return DataLoss("shared-basis shape mismatch");
    }
    std::copy((*basis)->v.begin(), (*basis)->v.begin() + static_cast<size_t>(rank) * w,
              v_rows.begin());
  } else {
    std::vector<uint8_t> codes(w);
    for (uint8_t rr = 0; rr < rank; ++rr) {
      float scale = 0.0f;
      std::span<const uint8_t> code_bytes;
      if (!r.ReadF32(&scale) || !r.ReadBytes(w, &code_bytes)) {
        return DataLoss("svd payload truncated in basis rows");
      }
      DequantizeF32Vector(code_bytes, scale,
                          std::span<float>(v_rows.data() + static_cast<size_t>(rr) * w, w));
    }
  }

  std::vector<uint8_t> out(raw_size);
  // Rebuild the 12-byte frame header from the stored geometry.
  out[0] = static_cast<uint8_t>(h);
  out[1] = static_cast<uint8_t>(h >> 8);
  out[2] = 0;
  out[3] = 0;
  out[4] = static_cast<uint8_t>(w);
  out[5] = static_cast<uint8_t>(w >> 8);
  out[6] = 0;
  out[7] = 0;
  out[8] = channels;
  out[9] = 0;
  out[10] = 0;
  out[11] = 0;

  const size_t pixels = static_cast<size_t>(h) * w;
  const std::span<uint8_t> body(out.data() + kFrameHeaderBytes,
                                pixels * static_cast<size_t>(channels));
  std::vector<float> recon_plane(pixels);
  std::vector<float> u_deq(h);
  std::vector<uint8_t> plane(pixels);
  for (uint8_t ch = 0; ch < channels; ++ch) {
    std::fill(recon_plane.begin(), recon_plane.end(), means[ch]);
    for (uint8_t rr = 0; rr < rank; ++rr) {
      float scale = 0.0f;
      std::span<const uint8_t> code_bytes;
      if (!r.ReadF32(&scale) || !r.ReadBytes(h, &code_bytes)) {
        return DataLoss("svd payload truncated in coefficients");
      }
      DequantizeF32Vector(code_bytes, scale, u_deq);
      const std::span<const float> v_row(v_rows.data() + static_cast<size_t>(rr) * w, w);
      AddOuter(recon_plane, h, w, u_deq, v_row);
    }
    FloatToPlane(recon_plane, plane);
    InterleavePlane(plane, channels, ch, body);
  }
  return out;
}

}  // namespace sand
