// Transparent object compression for the cached-view tier (DESIGN.md §11).
//
// TieredCache trades cheap cycles for effective storage budget: objects are
// encoded when they leave the hot memory tier (Demote, and optionally any
// disk-tier Put) and decoded on GetShared hits. Three codecs:
//
//   kLossless  the filter+LZ+Huffman codec from lossless.cc wrapped in the
//              self-describing container (exact; the default for frame views)
//   kQuant8    per-plane affine quantization (scale/zero-point per channel
//              plane) to `quant_bits` levels, nibble-packed, then the
//              lossless entropy stage over the codes
//   kSvd       rank-R factorization of each channel plane against a single
//              orthonormal basis V shared across the planes; augmented-frame
//              views of the same source frame can additionally share the
//              *base frame's* basis, storing only their per-augmentation
//              coefficient ("residual factor") matrices
//
// Every encoded object is framed as
//
//   magic "SCO1" | codec u8 | flags u8 | reserved u16 | raw_size u32 |
//   raw_crc32 u32 | codec payload
//
// raw_crc32 is the CRC of the *decoded* bytes: decode verifies it, so a
// corrupt or mis-detected object surfaces as DataLoss, never as wrong
// pixels. The DiskStore footer machinery (PR 5) is untouched — an encoded
// object is just a payload to the crash-safe publish path.
//
// Numeric kernels live in compress_kernels.cc (-O3 TU, like
// tensor/pixel_kernels); the basis power iteration is deterministic, which
// is what makes shared-basis decode (recompute V from the base object's
// bytes) possible.

#ifndef SAND_COMPRESS_LOSSY_H_
#define SAND_COMPRESS_LOSSY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/obs/metrics.h"

namespace sand {

enum class Codec : uint8_t {
  kNone = 0,      // store raw
  kLossless = 1,  // exact filter+LZ+Huffman
  kQuant8 = 2,    // per-plane affine quantization
  kSvd = 3,       // low-rank factorization, shared basis
};

const char* CodecName(Codec codec);
// Parses a codec name ("none", "lossless", "quant8", "svd"); nullopt otherwise.
std::optional<Codec> CodecFromName(std::string_view name);

struct CodecParams {
  int quant_bits = 4;      // 4 (nibble-packed, 16 levels) or 8 (256 levels)
  int svd_rank = 8;        // retained rank per plane
  int svd_power_iters = 6; // power-iteration sweeps per retained direction
};

// How a cache key maps onto the paper's view taxonomy; drives codec choice.
enum class ObjectClass {
  kFrame,     // decoded-frame view ("cache/<video>/f<idx>/...")
  kAugFrame,  // augmented/merged-frame view ("cache/<video>/a<idx>/...")
  kBatch,     // batch view (".../view")
  kOpaque,    // anything else (checkpoints, user objects)
};

ObjectClass ClassifyCacheKey(std::string_view key);

// The TieredCache-level policy (a field of ServiceOptions). Disabled by
// default: the cache stores exactly what it is given, as before.
struct CompressionPolicy {
  bool enabled = false;
  Codec frame_codec = Codec::kLossless;  // exact stays the default
  Codec aug_codec = Codec::kLossless;    // kSvd is the opt-in lossy mode
  Codec batch_codec = Codec::kLossless;
  Codec opaque_codec = Codec::kNone;     // checkpoints etc. stay raw
  // Also encode direct disk-tier Puts (not just Demote spills).
  bool compress_on_disk_put = false;
  // Objects below this size are stored raw (headers would dominate).
  size_t min_object_bytes = 1024;
  CodecParams params;

  Codec CodecFor(ObjectClass cls) const;
};

// Fetches the *raw* bytes of a base object for shared-basis decode; wired to
// TieredCache::GetShared (which already decodes transparently).
using BaseObjectFetcher = std::function<Result<SharedBytes>(const std::string&)>;

// Outcome of one Encode call, for the caller's accounting.
struct EncodeResult {
  std::vector<uint8_t> bytes;  // the framed object
  Codec codec = Codec::kNone;
  bool shared_basis = false;
};

// The codec engine a TieredCache owns when compression is enabled.
// Thread-safe: Encode/Decode run concurrently from pool workers and the
// demand path.
class ObjectCodec {
 public:
  explicit ObjectCodec(CompressionPolicy policy);

  const CompressionPolicy& policy() const { return policy_; }

  // Shared-basis plumbing. `NoteBaseObject` records that `key` (an
  // augmented-frame object) derives from `base_key` (its decoded source
  // frame); the executor registers these as it stores augmented nodes.
  void set_base_fetcher(BaseObjectFetcher fetcher);
  void NoteBaseObject(const std::string& key, const std::string& base_key);

  // Encodes `raw` with the codec the policy selects for `key`. Returns
  // nullopt when the object should be stored raw: codec kNone, object below
  // min_object_bytes, already encoded, or the encoding failed to shrink it.
  Result<std::optional<EncodeResult>> Encode(const std::string& key,
                                             std::span<const uint8_t> raw);

  // True when `bytes` starts with a well-formed container header.
  static bool IsEncoded(std::span<const uint8_t> bytes);

  // Decodes a framed object back to its exact (lossless) or approximate
  // (quant/svd) raw bytes; verifies the header CRC of the decoded output.
  // Shared-basis objects whose base is no longer fetchable fail NotFound —
  // the cache treats that as a miss, never an error.
  Result<std::vector<uint8_t>> Decode(std::span<const uint8_t> bytes);

  // Cumulative raw/encoded ratio over this engine's lifetime (1.0 until the
  // first successful encode). Feeds the eviction planner's savings estimate.
  double CumulativeRatio() const;

 private:
  struct Basis {
    int rank = 0;
    int width = 0;               // basis vectors are rows of length `width`
    std::vector<float> v;        // rank x width, orthonormal rows
  };

  // Computes (or fetches from the LRU) the deterministic basis of the base
  // object stored under `base_key`.
  Result<std::shared_ptr<const Basis>> BasisFor(const std::string& base_key, int rank);

  Result<std::optional<EncodeResult>> EncodeLossless(std::span<const uint8_t> raw);
  Result<std::optional<EncodeResult>> EncodeQuant(std::span<const uint8_t> raw);
  Result<std::optional<EncodeResult>> EncodeSvd(const std::string& key,
                                                std::span<const uint8_t> raw);

  Result<std::vector<uint8_t>> DecodeLossless(std::span<const uint8_t> payload,
                                              size_t raw_size);
  Result<std::vector<uint8_t>> DecodeQuant(std::span<const uint8_t> payload, size_t raw_size);
  Result<std::vector<uint8_t>> DecodeSvd(std::span<const uint8_t> payload, size_t raw_size,
                                         bool shared);

  const CompressionPolicy policy_;

  std::mutex fetcher_mutex_;
  BaseObjectFetcher base_fetcher_;

  // aug key -> base key hints (bounded; advisory — encode falls back to a
  // self-contained basis when the hint or the base object is missing).
  std::mutex hints_mutex_;
  std::map<std::string, std::string> base_hints_;
  std::list<std::string> hint_order_;  // FIFO eviction

  // base key -> basis LRU.
  std::mutex basis_mutex_;
  std::map<std::string, std::shared_ptr<const Basis>> basis_cache_;
  std::list<std::string> basis_order_;

  std::atomic<uint64_t> raw_total_{0};
  std::atomic<uint64_t> encoded_total_{0};

  // Registry-backed metrics (surfaced at /.sand/metrics, tools/sand_stat).
  obs::Counter* bytes_saved_;
  obs::Counter* raw_bytes_;
  obs::Counter* encoded_bytes_;
  obs::Counter* hits_;
  obs::Counter* encode_fallbacks_;
  obs::Gauge* ratio_x1000_;
  obs::Histogram* encode_ns_;
  obs::Histogram* decode_ns_;
};

}  // namespace sand

#endif  // SAND_COMPRESS_LOSSY_H_
