#include "src/cluster/hash_ring.h"

#include <algorithm>

#include "src/obs/metrics.h"

namespace sand {
namespace cluster {

uint64_t HashKey64(std::string_view data) {
  // FNV-1a, 64-bit offset basis / prime.
  uint64_t hash = 14695981039346656037ull;
  for (char c : data) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ull;
  }
  // splitmix64 finalizer: raw FNV leaves sequential inputs ("node#0",
  // "node#1", ...) correlated in the high bits, which skews the ring's
  // point spacing badly; the avalanche pass restores balance.
  hash ^= hash >> 30;
  hash *= 0xbf58476d1ce4e5b9ull;
  hash ^= hash >> 27;
  hash *= 0x94d049bb133111ebull;
  hash ^= hash >> 31;
  return hash;
}

HashRing::HashRing(std::vector<std::string> nodes, int virtual_nodes)
    : virtual_nodes_(std::max(1, virtual_nodes)),
      rebuilds_(obs::Registry::Get().GetCounter("sand.cluster.ring_rebuilds")) {
  SetMembership(std::move(nodes));
}

void HashRing::SetMembership(std::vector<std::string> nodes) {
  nodes_ = std::move(nodes);
  Rebuild();
}

void HashRing::Rebuild() {
  points_.clear();
  points_.reserve(nodes_.size() * static_cast<size_t>(virtual_nodes_));
  for (size_t node = 0; node < nodes_.size(); ++node) {
    for (int vnode = 0; vnode < virtual_nodes_; ++vnode) {
      // The point label is "name#i": placement depends only on the node's
      // name, never on its list position, so processes agree regardless of
      // how the membership list was assembled.
      const std::string label = nodes_[node] + "#" + std::to_string(vnode);
      points_.emplace_back(HashKey64(label), static_cast<uint32_t>(node));
    }
  }
  std::sort(points_.begin(), points_.end());
  rebuilds_->Add(1);
}

Result<size_t> HashRing::OwnerOf(const std::string& key) const {
  if (points_.empty()) {
    return FailedPrecondition("hash ring has no nodes");
  }
  const uint64_t hash = HashKey64(key);
  // First point at or clockwise after the key; wrap to the start when the
  // key hashes past the last point.
  auto it = std::lower_bound(
      points_.begin(), points_.end(), hash,
      [](const std::pair<uint64_t, uint32_t>& point, uint64_t h) {
        return point.first < h;
      });
  if (it == points_.end()) {
    it = points_.begin();
  }
  return static_cast<size_t>(it->second);
}

}  // namespace cluster
}  // namespace sand
