// HashRing: consistent hashing over an explicit store-node membership list
// (DESIGN.md §14).
//
// The cluster shards the object namespace by key: every key has exactly one
// owning node, and every process that shares the same membership list (same
// names, any order of operations) computes the same owner — the hash is a
// fixed FNV-1a, not std::hash, so separately built sand_server processes
// agree on the ring.
//
// Each node contributes `virtual_nodes` points ("name#i") on a 64-bit ring;
// a key is owned by the node whose point is the first at or clockwise after
// the key's hash. Virtual nodes keep the shard sizes balanced, and removing
// a node remaps only the keys it owned (they fall to the next point
// clockwise); every other key keeps its owner — the property the failover
// tests pin.
//
// Membership changes rebuild the point list and count on
// sand.cluster.ring_rebuilds. The ring itself is not synchronized: readers
// and SetMembership must be serialized by the owner (ClusterStore fixes
// membership at construction; tests mutate single-threaded).

#ifndef SAND_CLUSTER_HASH_RING_H_
#define SAND_CLUSTER_HASH_RING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/result.h"

namespace sand {
namespace obs {
class Counter;
}  // namespace obs

namespace cluster {

// 64-bit FNV-1a. Deterministic across builds and processes, unlike
// std::hash; the ring's placement function.
uint64_t HashKey64(std::string_view data);

class HashRing {
 public:
  static constexpr int kDefaultVirtualNodes = 64;

  explicit HashRing(std::vector<std::string> nodes = {},
                    int virtual_nodes = kDefaultVirtualNodes);

  // Replaces the membership list and rebuilds the ring (counted on
  // sand.cluster.ring_rebuilds). Node names must be unique.
  void SetMembership(std::vector<std::string> nodes);

  // Index (into nodes()) of the node owning `key`; fails on an empty ring.
  Result<size_t> OwnerOf(const std::string& key) const;

  const std::vector<std::string>& nodes() const { return nodes_; }
  size_t size() const { return nodes_.size(); }
  int virtual_nodes() const { return virtual_nodes_; }

 private:
  void Rebuild();

  std::vector<std::string> nodes_;
  int virtual_nodes_;
  // (point hash, node index), sorted by hash; lookup is one binary search.
  std::vector<std::pair<uint64_t, uint32_t>> points_;
  obs::Counter* rebuilds_;
};

}  // namespace cluster
}  // namespace sand

#endif  // SAND_CLUSTER_HASH_RING_H_
