#include "src/cluster/cluster_store.h"

#include <chrono>
#include <sstream>
#include <thread>
#include <utility>

#include "src/common/logging.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/vfs/sand_fs.h"

namespace sand {
namespace cluster {

namespace {

inline const Status& StatusOf(const Status& status) { return status; }
template <typename T>
const Status& StatusOf(const Result<T>& result) {
  return result.status();
}

std::string EndpointOf(const ClusterNodeOptions& node) {
  if (!node.unix_path.empty()) {
    return node.unix_path;
  }
  return node.host + ":" + std::to_string(node.port);
}

void AppendJsonString(std::ostringstream& out, const std::string& value) {
  out << '"';
  for (char c : value) {
    if (c == '"' || c == '\\') {
      out << '\\';
    }
    out << c;
  }
  out << '"';
}

}  // namespace

ClusterStore::ClusterStore(std::shared_ptr<ObjectStore> local_shard,
                           ClusterStoreOptions options)
    : local_(std::move(local_shard)), options_(std::move(options)) {
  if (options_.self_index >= static_cast<int>(options_.nodes.size())) {
    SAND_LOG(kWarning) << "cluster: self_index " << options_.self_index
                       << " out of range; running client-only";
    options_.self_index = -1;
  }
  if (options_.self_index >= 0 && local_ == nullptr) {
    SAND_LOG(kWarning) << "cluster: self node has no local shard store; "
                          "running client-only";
    options_.self_index = -1;
  }
  std::vector<std::string> names;
  names.reserve(options_.nodes.size());
  for (ClusterNodeOptions& node : options_.nodes) {
    // The ring label defaults to the endpoint; what matters is that every
    // process in the cluster uses the same labels.
    if (node.name.empty()) {
      node.name = EndpointOf(node);
    }
    names.push_back(node.name);
  }
  ring_.SetMembership(std::move(names));
  peers_.reserve(options_.nodes.size());
  for (const ClusterNodeOptions& node : options_.nodes) {
    auto peer = std::make_unique<Peer>();
    peer->spec = node;
    peers_.push_back(std::move(peer));
  }
}

ClusterStore::~ClusterStore() {
  if (control_view_registered_) {
    SandFs::RegisterControlView("cluster", {});
  }
}

void ClusterStore::RegisterControlView() {
  SandFs::RegisterControlView("cluster", [this] { return HealthJson(); });
  control_view_registered_ = true;
}

Result<size_t> ClusterStore::OwnerOf(const std::string& key) const {
  return ring_.OwnerOf(key);
}

bool ClusterStore::NodeOnline(size_t node) const {
  if (node >= peers_.size()) {
    return false;
  }
  if (IsSelf(node)) {
    return true;
  }
  return !peers_[node]->offline.load(std::memory_order_relaxed);
}

bool ClusterStore::PeerAvailable(Peer& peer) const {
  if (!peer.offline.load(std::memory_order_relaxed)) {
    return true;
  }
  const Nanos now = WallClock::Get().Now();
  Nanos probe_at = peer.probe_at.load(std::memory_order_relaxed);
  while (now >= probe_at) {
    // Claim the probe slot: one caller per reprobe interval tests the
    // node; everyone else short-circuits to UNAVAILABLE (a cheap miss)
    // instead of queueing on dial timeouts.
    if (peer.probe_at.compare_exchange_weak(
            probe_at, now + options_.fault_policy.reprobe_interval,
            std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

void ClusterStore::NotePeerResult(Peer& peer, bool healthy) const {
  if (healthy) {
    peer.failure_streak.store(0, std::memory_order_relaxed);
    if (peer.offline.exchange(false, std::memory_order_relaxed)) {
      SAND_LOG(kInfo) << "cluster node '" << peer.spec.name << "' back online";
    }
    return;
  }
  const int streak = peer.failure_streak.fetch_add(1, std::memory_order_relaxed) + 1;
  if (streak >= options_.fault_policy.offline_threshold &&
      !peer.offline.exchange(true, std::memory_order_relaxed)) {
    peer.probe_at.store(WallClock::Get().Now() + options_.fault_policy.reprobe_interval,
                        std::memory_order_relaxed);
    SAND_LOG(kWarning) << "cluster node '" << peer.spec.name << "' marked offline after "
                       << streak << " consecutive failures; its shard degrades to "
                          "local recompute";
  } else if (peer.offline.load(std::memory_order_relaxed)) {
    // A failed probe: push the next probe out a full interval.
    peer.probe_at.store(WallClock::Get().Now() + options_.fault_policy.reprobe_interval,
                        std::memory_order_relaxed);
  }
}

Result<std::unique_ptr<net::SandClient>> ClusterStore::AcquireClient(Peer& peer) {
  {
    std::lock_guard<std::mutex> lock(peer.mutex);
    if (!peer.idle.empty()) {
      std::unique_ptr<net::SandClient> client = std::move(peer.idle.back());
      peer.idle.pop_back();
      return client;
    }
  }
  net::SandClient::Options copts;
  copts.unix_path = peer.spec.unix_path;
  copts.host = peer.spec.host;
  copts.port = peer.spec.port;
  copts.tenant = options_.tenant;
  return net::SandClient::Connect(copts);
}

void ClusterStore::ReleaseClient(Peer& peer, std::unique_ptr<net::SandClient> client) {
  std::lock_guard<std::mutex> lock(peer.mutex);
  if (static_cast<int>(peer.idle.size()) < std::max(1, options_.connections_per_peer)) {
    peer.idle.push_back(std::move(client));
  }
  // Else: drop the connection; the pool keeps only connections_per_peer.
}

template <typename Fn>
auto ClusterStore::PeerCall(size_t node, Fn&& fn)
    -> decltype(fn(std::declval<net::SandClient&>())) {
  using R = decltype(fn(std::declval<net::SandClient&>()));
  Peer& peer = *peers_[node];
  if (!PeerAvailable(peer)) {
    return R(Unavailable("cluster node '" + peer.spec.name + "' is offline"));
  }
  SAND_SPAN("cluster_peer_call");
  peer.requests.fetch_add(1, std::memory_order_relaxed);
  Nanos backoff = options_.fault_policy.initial_backoff;
  Status transport = Status::Ok();
  for (int attempt = 0;; ++attempt) {
    auto client = AcquireClient(peer);
    if (client.ok()) {
      R result = fn(**client);
      if (StatusOf(result).code() != ErrorCode::kUnavailable) {
        // The server answered (ok, NotFound, even INVALID_ARGUMENT from a
        // pre-cluster build): the node is healthy and the connection is
        // reusable. Only transport failures feed the breaker.
        ReleaseClient(peer, std::move(*client));
        NotePeerResult(peer, true);
        return result;
      }
      // UNAVAILABLE poisons the pipelined client; drop it and redial.
      transport = StatusOf(result);
    } else {
      transport = client.status();
    }
    if (attempt >= options_.fault_policy.max_retries) {
      peer.errors.fetch_add(1, std::memory_order_relaxed);
      NotePeerResult(peer, false);
      return R(Unavailable("cluster node '" + peer.spec.name +
                           "' unreachable: " + transport.message()));
    }
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(backoff));
    }
    backoff = static_cast<Nanos>(static_cast<double>(backoff) *
                                 options_.fault_policy.backoff_multiplier);
  }
}

Status ClusterStore::Put(const std::string& key, std::span<const uint8_t> data) {
  SAND_ASSIGN_OR_RETURN(size_t owner, OwnerOf(key));
  if (IsSelf(owner)) {
    return local_->Put(key, data);
  }
  Status status = PeerCall(owner, [&](net::SandClient& client) {
    return client.PutObject(key, data);
  });
  if (status.ok()) {
    peers_[owner]->bytes_pushed.fetch_add(data.size(), std::memory_order_relaxed);
  }
  return status;
}

Status ClusterStore::PutShared(const std::string& key, SharedBytes data) {
  if (data == nullptr) {
    return InvalidArgument("PutShared: null buffer");
  }
  SAND_ASSIGN_OR_RETURN(size_t owner, OwnerOf(key));
  if (IsSelf(owner)) {
    // The self shard adopts the reference: a locally owned key costs no
    // copy and no wire hop.
    return local_->PutShared(key, std::move(data));
  }
  Status status = PeerCall(owner, [&](net::SandClient& client) {
    return client.PutObject(key, std::span<const uint8_t>(*data));
  });
  if (status.ok()) {
    peers_[owner]->bytes_pushed.fetch_add(data->size(), std::memory_order_relaxed);
  }
  return status;
}

Result<bool> ClusterStore::PutIfAbsent(const std::string& key,
                                       std::span<const uint8_t> data) {
  SAND_ASSIGN_OR_RETURN(size_t owner, OwnerOf(key));
  if (IsSelf(owner)) {
    return local_->PutIfAbsent(key, data);
  }
  // Stat-then-put is not atomic across the wire, but cluster keys are
  // content-addressed plan keys: two racing writers store identical bytes,
  // so the worst case is a duplicate transfer, not divergent state.
  Result<net::SandClient::ObjectStat> stat = PeerCall(
      owner, [&](net::SandClient& client) { return client.StatObject(key); });
  if (!stat.ok()) {
    return stat.status();
  }
  if (stat->exists) {
    return false;
  }
  Status put = PeerCall(owner, [&](net::SandClient& client) {
    return client.PutObject(key, data);
  });
  if (!put.ok()) {
    return put;
  }
  peers_[owner]->bytes_pushed.fetch_add(data.size(), std::memory_order_relaxed);
  return true;
}

Result<SharedBytes> ClusterStore::GetShared(const std::string& key) {
  SAND_ASSIGN_OR_RETURN(size_t owner, OwnerOf(key));
  if (IsSelf(owner)) {
    return local_->GetShared(key);
  }
  Result<SharedBytes> fetched = PeerCall(owner, [&](net::SandClient& client) {
    return client.GetObjectShared(key);
  });
  if (fetched.ok()) {
    peers_[owner]->bytes_fetched.fetch_add((*fetched)->size(),
                                           std::memory_order_relaxed);
  }
  return fetched;
}

bool ClusterStore::Contains(const std::string& key) {
  auto owner = OwnerOf(key);
  if (!owner.ok()) {
    return false;
  }
  if (IsSelf(*owner)) {
    return local_->Contains(key);
  }
  Result<net::SandClient::ObjectStat> stat = PeerCall(
      *owner, [&](net::SandClient& client) { return client.StatObject(key); });
  return stat.ok() && stat->exists;
}

Result<uint64_t> ClusterStore::SizeOf(const std::string& key) {
  SAND_ASSIGN_OR_RETURN(size_t owner, OwnerOf(key));
  if (IsSelf(owner)) {
    return local_->SizeOf(key);
  }
  Result<net::SandClient::ObjectStat> stat = PeerCall(
      owner, [&](net::SandClient& client) { return client.StatObject(key); });
  if (!stat.ok()) {
    return stat.status();
  }
  if (!stat->exists) {
    return NotFound("no object: " + key);
  }
  return stat->size;
}

Status ClusterStore::Delete(const std::string& key) {
  SAND_ASSIGN_OR_RETURN(size_t owner, OwnerOf(key));
  if (IsSelf(owner)) {
    return local_->Delete(key);
  }
  return PeerCall(owner, [&](net::SandClient& client) {
    return client.DeleteObject(key);
  });
}

uint64_t ClusterStore::UsedBytes() {
  return local_ != nullptr ? local_->UsedBytes() : 0;
}

uint64_t ClusterStore::CapacityBytes() {
  return local_ != nullptr ? local_->CapacityBytes() : 0;
}

std::vector<std::string> ClusterStore::ListKeys() {
  return local_ != nullptr ? local_->ListKeys() : std::vector<std::string>{};
}

std::string ClusterStore::HealthJson() const {
  obs::Registry& registry = obs::Registry::Get();
  std::ostringstream out;
  out << "{\n";
  out << "  \"self\": " << options_.self_index << ",\n";
  out << "  \"virtual_nodes\": " << ring_.virtual_nodes() << ",\n";
  out << "  \"peer_hits\": " << registry.GetCounter("sand.cluster.peer_hits")->Value()
      << ",\n";
  out << "  \"peer_misses\": "
      << registry.GetCounter("sand.cluster.peer_misses")->Value() << ",\n";
  out << "  \"peer_bytes\": " << registry.GetCounter("sand.cluster.peer_bytes")->Value()
      << ",\n";
  out << "  \"ring_rebuilds\": "
      << registry.GetCounter("sand.cluster.ring_rebuilds")->Value() << ",\n";
  out << "  \"nodes\": [\n";
  for (size_t i = 0; i < peers_.size(); ++i) {
    const Peer& peer = *peers_[i];
    out << "    {\"name\": ";
    AppendJsonString(out, peer.spec.name);
    out << ", \"endpoint\": ";
    AppendJsonString(out, EndpointOf(peer.spec));
    out << ", \"self\": " << (IsSelf(i) ? "true" : "false");
    out << ", \"online\": " << (NodeOnline(i) ? "true" : "false");
    out << ", \"failure_streak\": " << peer.failure_streak.load(std::memory_order_relaxed);
    out << ", \"requests\": " << peer.requests.load(std::memory_order_relaxed);
    out << ", \"errors\": " << peer.errors.load(std::memory_order_relaxed);
    out << ", \"bytes_fetched\": " << peer.bytes_fetched.load(std::memory_order_relaxed);
    out << ", \"bytes_pushed\": " << peer.bytes_pushed.load(std::memory_order_relaxed);
    out << "}" << (i + 1 < peers_.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  return out.str();
}

}  // namespace cluster
}  // namespace sand
