// ClusterStore: the object namespace sharded across N store nodes
// (DESIGN.md §14).
//
// Each node in the ring is a SandServer with an object-store backend,
// reachable over the wire-v2 pipelined protocol. A ClusterStore routes
// every Put/GetShared/Contains/SizeOf/Delete to the key's ring owner
// (HashRing): the self shard short-circuits in-process against the local
// store, remote shards go over pooled pipelined SandClient connections.
//
// Failure semantics mirror the TieredCache disk tier's DiskFaultPolicy
// rails: a transport failure (UNAVAILABLE) is retried with exponential
// backoff, a streak of failures marks the node offline and ops on its
// shard short-circuit to UNAVAILABLE until a reprobe interval expires —
// so a dead peer costs one failed probe per interval, not a dial timeout
// per read. Callers above (TieredCache's peer probe) treat any failure as
// a miss, degrading to local recompute; a vanished node can slow a job
// down, never fail it.
//
// Health: per-node breaker state and traffic land in "/.sand/cluster"
// (RegisterControlView publishes the JSON renderer through SandFs's
// control-view hook) next to the sand.cluster.* registry counters.

#ifndef SAND_CLUSTER_CLUSTER_STORE_H_
#define SAND_CLUSTER_CLUSTER_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/cluster/hash_ring.h"
#include "src/common/clock.h"
#include "src/common/result.h"
#include "src/net/sand_client.h"
#include "src/storage/object_store.h"

namespace sand {
namespace cluster {

// One ring member. `name` is the ring label (placement identity — every
// process must use the same names); the endpoint is how THIS process
// dials it. Unix path wins when set, else host:port TCP.
struct ClusterNodeOptions {
  std::string name;
  std::string unix_path;
  std::string host = "127.0.0.1";
  int port = -1;
};

struct ClusterStoreOptions {
  // Ring membership, including this process's own node (if any).
  std::vector<ClusterNodeOptions> nodes;
  // Index into `nodes` of this process's shard; -1 = client-only (every
  // key routes to a remote node).
  int self_index = -1;
  // Tenant tag peer connections HELLO with.
  std::string tenant = "cluster";
  int virtual_nodes = HashRing::kDefaultVirtualNodes;
  // Pooled pipelined connections kept per peer (extras are dialed under
  // load and dropped on release).
  int connections_per_peer = 2;
  // Node-down retry/degrade knobs, reusing the disk tier's policy shape.
  DiskFaultPolicy fault_policy;
};

class ClusterStore : public ObjectStore {
 public:
  // `local_shard` backs the self node's keys and must be the same store
  // the local SandServer serves to peers; required when self_index >= 0.
  ClusterStore(std::shared_ptr<ObjectStore> local_shard, ClusterStoreOptions options);
  ~ClusterStore() override;

  ClusterStore(const ClusterStore&) = delete;
  ClusterStore& operator=(const ClusterStore&) = delete;

  Status Put(const std::string& key, std::span<const uint8_t> data) override;
  Status PutShared(const std::string& key, SharedBytes data) override;
  Result<bool> PutIfAbsent(const std::string& key, std::span<const uint8_t> data) override;
  Result<SharedBytes> GetShared(const std::string& key) override;
  bool Contains(const std::string& key) override;
  Result<uint64_t> SizeOf(const std::string& key) override;
  Status Delete(const std::string& key) override;
  // Capacity/usage/listing describe the local shard only; remote shards
  // are other processes' stores.
  uint64_t UsedBytes() override;
  uint64_t CapacityBytes() override;
  std::vector<std::string> ListKeys() override;

  // Ring owner of `key` (index into options().nodes); FAILED_PRECONDITION
  // on an empty ring.
  Result<size_t> OwnerOf(const std::string& key) const;
  // Breaker state of a node (self is always online).
  bool NodeOnline(size_t node) const;
  const ClusterStoreOptions& options() const { return options_; }
  const HashRing& ring() const { return ring_; }

  // Per-node health + traffic as JSON (the "/.sand/cluster" body).
  std::string HealthJson() const;
  // Publishes "/.sand/cluster" rendering this instance's HealthJson via
  // SandFs::RegisterControlView. The view is process-global: the last
  // registered instance wins, and the destructor unregisters itself.
  void RegisterControlView();

 private:
  struct Peer {
    ClusterNodeOptions spec;
    // Connection pool (idle clients; acquisition dials when empty).
    mutable std::mutex mutex;
    std::vector<std::unique_ptr<net::SandClient>> idle;
    // Circuit breaker, mirroring the TieredCache disk-tier rails.
    std::atomic<int> failure_streak{0};
    std::atomic<bool> offline{false};
    std::atomic<Nanos> probe_at{0};
    // Traffic/health counters for /.sand/cluster.
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> errors{0};
    std::atomic<uint64_t> bytes_fetched{0};
    std::atomic<uint64_t> bytes_pushed{0};
  };

  bool IsSelf(size_t node) const {
    return options_.self_index >= 0 && node == static_cast<size_t>(options_.self_index);
  }
  // True when an op against the peer may be attempted (online, or offline
  // with an expired reprobe clock — the caller becomes the probe).
  bool PeerAvailable(Peer& peer) const;
  // Feeds the breaker; `healthy` = the op did not end in a transport error.
  void NotePeerResult(Peer& peer, bool healthy) const;
  Result<std::unique_ptr<net::SandClient>> AcquireClient(Peer& peer);
  void ReleaseClient(Peer& peer, std::unique_ptr<net::SandClient> client);

  // Runs `fn(client)` against the peer with the retry policy. A transport
  // failure (UNAVAILABLE — the client poisons itself) drops the connection
  // and retries on a fresh dial; terminal failure reports UNAVAILABLE and
  // feeds the breaker.
  template <typename Fn>
  auto PeerCall(size_t node, Fn&& fn) -> decltype(fn(std::declval<net::SandClient&>()));

  std::shared_ptr<ObjectStore> local_;
  ClusterStoreOptions options_;
  HashRing ring_;
  std::vector<std::unique_ptr<Peer>> peers_;  // parallel to options_.nodes
  bool control_view_registered_ = false;
};

}  // namespace cluster
}  // namespace sand

#endif  // SAND_CLUSTER_CLUSTER_STORE_H_
