// Mini-Ray: the multi-job execution layer for the paper's shared-dataset
// scenarios (§7.1).
//
//   TuneRunner      - Ray-Tune-style hyperparameter search with the ASHA
//                     early-stopping scheduler across N simulated GPUs
//   MultiTaskRunner - heterogeneous tasks (e.g. SlowFast + MAE) training
//                     concurrently on separate GPUs over one dataset
//   DdpRunner       - data-parallel ranks with a per-iteration barrier
//                     (allreduce stand-in), dataset on remote storage
//
// All runners are source-agnostic: a factory supplies each job's
// BatchSource, so the same harness drives SAND and every baseline.

#ifndef SAND_RAY_MINI_RAY_H_
#define SAND_RAY_MINI_RAY_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/common/result.h"
#include "src/sim/gpu_model.h"
#include "src/workloads/models.h"
#include "src/workloads/trainer.h"

namespace sand {

// Pseudo-validation score of a trial after `epochs` epochs: a seeded,
// monotone-ish learning curve with trial-specific asymptote. Drives ASHA
// decisions deterministically.
double TrialScore(uint64_t trial_seed, int64_t epochs);

struct TuneOptions {
  int num_trials = 8;
  int num_gpus = 4;
  int64_t max_epochs = 4;
  int64_t grace_epochs = 1;  // ASHA rung 0
  double eta = 2.0;          // ASHA reduction factor
  uint64_t seed = 1234;
  int cpu_cores = 4;  // for energy accounting
  PowerSpec power;
};

struct TrialOutcome {
  int trial = 0;
  int64_t epochs_run = 0;
  bool early_stopped = false;
  double final_score = 0;
  RunMetrics metrics;
};

struct TuneResult {
  Nanos wall_ns = 0;
  std::vector<TrialOutcome> trials;
  double avg_gpu_utilization = 0;  // mean over GPUs of busy/wall
  EnergyBreakdown energy;          // aggregate over the search
  Nanos cpu_busy_ns = 0;
  int best_trial = -1;

  int64_t TotalEpochsRun() const;
};

// Creates the batch source for a given trial running on a given GPU slot.
using SourceFactory =
    std::function<Result<std::unique_ptr<BatchSource>>(int trial, int gpu_slot)>;

class TuneRunner {
 public:
  explicit TuneRunner(TuneOptions options) : options_(std::move(options)) {}

  // Runs the search: trials are dispatched to `gpus` (one concurrent trial
  // per GPU) until all have finished or been ASHA-stopped. `meter` observes
  // preprocessing CPU (shared across trials), may be null.
  Result<TuneResult> Run(const SourceFactory& factory, const ModelProfile& profile,
                         std::vector<GpuModel*> gpus, CpuMeter* meter);

 private:
  TuneOptions options_;
};

// --- Multi-task --------------------------------------------------------------

struct MultiTaskJob {
  ModelProfile profile;
  std::unique_ptr<BatchSource> source;
  GpuModel* gpu = nullptr;
};

struct MultiTaskResult {
  Nanos wall_ns = 0;
  std::vector<RunMetrics> per_task;
};

// Runs all jobs concurrently (one thread each) for `epochs` epochs.
Result<MultiTaskResult> RunMultiTask(std::vector<MultiTaskJob> jobs, int64_t epochs,
                                     int cpu_cores, const PowerSpec& power, CpuMeter* meter);

// --- Distributed data parallel ----------------------------------------------

struct DdpOptions {
  int world_size = 2;
  int64_t epochs = 4;
  int cpu_cores_per_node = 4;
  PowerSpec power;
};

struct DdpResult {
  Nanos wall_ns = 0;
  std::vector<RunMetrics> per_rank;
  double avg_gpu_utilization = 0;
};

// Each rank trains its shard of every epoch's iterations with a barrier per
// step (the allreduce). Rank r's source serves iterations r, r+W, r+2W, ...
Result<DdpResult> RunDdp(std::vector<MultiTaskJob> ranks, const DdpOptions& options,
                         CpuMeter* meter);

}  // namespace sand

#endif  // SAND_RAY_MINI_RAY_H_
