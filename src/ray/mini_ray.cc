#include "src/ray/mini_ray.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>

#include "src/common/logging.h"
#include "src/common/rng.h"

namespace sand {

double TrialScore(uint64_t trial_seed, int64_t epochs) {
  Rng rng(trial_seed);
  double asymptote = 0.55 + rng.NextDouble() * 0.4;  // trial quality
  double speed = 0.4 + rng.NextDouble() * 1.2;       // learning speed
  double x = static_cast<double>(epochs);
  return asymptote * (1.0 - std::exp(-speed * x));
}

int64_t TuneResult::TotalEpochsRun() const {
  int64_t total = 0;
  for (const TrialOutcome& trial : trials) {
    total += trial.epochs_run;
  }
  return total;
}

namespace {

// Shared ASHA state: scores recorded at each rung.
class AshaState {
 public:
  AshaState(int64_t grace, double eta, int64_t max_epochs) : eta_(eta) {
    for (int64_t rung = grace; rung < max_epochs; rung = std::max<int64_t>(
             rung + 1, static_cast<int64_t>(static_cast<double>(rung) * eta))) {
      rungs_.push_back(rung);
    }
  }

  bool IsRung(int64_t epochs_done) const {
    return std::find(rungs_.begin(), rungs_.end(), epochs_done) != rungs_.end();
  }

  // Records the score; returns true if the trial should continue.
  bool RecordAndDecide(int64_t rung, double score) {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<double>& scores = scores_[rung];
    scores.push_back(score);
    if (scores.size() < static_cast<size_t>(std::ceil(eta_))) {
      return true;  // not enough evidence yet: promote optimistically
    }
    // Keep the top 1/eta fraction.
    std::vector<double> sorted = scores;
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    size_t keep = std::max<size_t>(1, static_cast<size_t>(
                                          static_cast<double>(sorted.size()) / eta_));
    return score >= sorted[keep - 1];
  }

 private:
  double eta_;
  std::vector<int64_t> rungs_;
  std::mutex mutex_;
  std::map<int64_t, std::vector<double>> scores_;
};

}  // namespace

Result<TuneResult> TuneRunner::Run(const SourceFactory& factory, const ModelProfile& profile,
                                   std::vector<GpuModel*> gpus, CpuMeter* meter) {
  if (gpus.empty()) {
    return InvalidArgument("tune: no GPUs");
  }
  TuneResult result;
  result.trials.resize(static_cast<size_t>(options_.num_trials));
  AshaState asha(options_.grace_epochs, options_.eta, options_.max_epochs);

  std::atomic<int> next_trial{0};
  std::mutex result_mutex;
  Status first_error = Status::Ok();

  Nanos cpu_before = meter != nullptr ? meter->TotalBusy() : 0;
  for (GpuModel* gpu : gpus) {
    gpu->BeginRun();
  }
  Stopwatch wall;

  auto worker = [&](int gpu_slot) {
    while (true) {
      int trial = next_trial.fetch_add(1);
      if (trial >= options_.num_trials) {
        return;
      }
      uint64_t trial_seed = options_.seed * 7919 + static_cast<uint64_t>(trial);
      Result<std::unique_ptr<BatchSource>> source = factory(trial, gpu_slot);
      if (!source.ok()) {
        std::lock_guard<std::mutex> lock(result_mutex);
        if (first_error.ok()) {
          first_error = source.status();
        }
        return;
      }
      TrialOutcome outcome;
      outcome.trial = trial;
      GpuModel* gpu = gpus[static_cast<size_t>(gpu_slot)];
      int64_t ipe = (*source)->IterationsPerEpoch();
      Stopwatch trial_watch;
      for (int64_t epoch = 0; epoch < options_.max_epochs; ++epoch) {
        for (int64_t iter = 0; iter < ipe; ++iter) {
          Result<SharedBytes> batch = (*source)->NextBatch(epoch, iter);
          if (!batch.ok()) {
            std::lock_guard<std::mutex> lock(result_mutex);
            if (first_error.ok()) {
              first_error = batch.status();
            }
            return;
          }
          outcome.metrics.bytes_consumed += (*batch)->size();
          gpu->TrainStep(profile.gpu_step);
          ++outcome.metrics.batches;
        }
        ++outcome.epochs_run;
        outcome.final_score = TrialScore(trial_seed, outcome.epochs_run);
        if (asha.IsRung(outcome.epochs_run) &&
            !asha.RecordAndDecide(outcome.epochs_run, outcome.final_score)) {
          outcome.early_stopped = true;  // ASHA: stop the laggard
          break;
        }
      }
      (*source)->Finish();
      outcome.metrics.wall_ns = trial_watch.Elapsed();
      std::lock_guard<std::mutex> lock(result_mutex);
      result.trials[static_cast<size_t>(trial)] = std::move(outcome);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(gpus.size());
  for (size_t g = 0; g < gpus.size(); ++g) {
    threads.emplace_back(worker, static_cast<int>(g));
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  result.wall_ns = wall.Elapsed();
  for (GpuModel* gpu : gpus) {
    gpu->EndRun();
  }
  if (!first_error.ok()) {
    return first_error;
  }

  Nanos gpu_busy_total = 0;
  Nanos nvdec_total = 0;
  double util_sum = 0;
  for (GpuModel* gpu : gpus) {
    GpuRunStats stats = gpu->run_stats();
    gpu_busy_total += stats.busy_ns;
    nvdec_total += stats.nvdec_ns;
    util_sum += stats.Utilization();
  }
  result.avg_gpu_utilization = util_sum / static_cast<double>(gpus.size());
  result.cpu_busy_ns = meter != nullptr ? meter->TotalBusy() - cpu_before : 0;
  result.energy =
      ComputeEnergy(options_.power, result.wall_ns, result.cpu_busy_ns, options_.cpu_cores,
                    gpu_busy_total, nvdec_total, static_cast<int>(gpus.size()));

  double best_score = -1;
  for (const TrialOutcome& trial : result.trials) {
    if (trial.final_score > best_score) {
      best_score = trial.final_score;
      result.best_trial = trial.trial;
    }
  }
  return result;
}

Result<MultiTaskResult> RunMultiTask(std::vector<MultiTaskJob> jobs, int64_t epochs,
                                     int cpu_cores, const PowerSpec& power, CpuMeter* meter) {
  if (jobs.empty()) {
    return InvalidArgument("multitask: no jobs");
  }
  MultiTaskResult result;
  result.per_task.resize(jobs.size());
  std::mutex error_mutex;
  Status first_error = Status::Ok();

  Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(jobs.size());
  for (size_t j = 0; j < jobs.size(); ++j) {
    threads.emplace_back([&, j] {
      TrainRunOptions options;
      options.epochs = epochs;
      options.cpu_cores = cpu_cores;
      options.power = power;
      Result<RunMetrics> metrics =
          RunTraining(*jobs[j].source, *jobs[j].gpu, jobs[j].profile, options, nullptr);
      if (metrics.ok()) {
        result.per_task[j] = metrics.TakeValue();
      } else {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error.ok()) {
          first_error = metrics.status();
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  result.wall_ns = wall.Elapsed();
  if (!first_error.ok()) {
    return first_error;
  }
  if (meter != nullptr) {
    // Aggregate energy over the shared window, attributed evenly.
    Nanos gpu_busy = 0;
    Nanos nvdec = 0;
    for (const RunMetrics& metrics : result.per_task) {
      gpu_busy += metrics.gpu_busy_ns;
      nvdec += metrics.gpu_nvdec_ns;
    }
    EnergyBreakdown energy =
        ComputeEnergy(power, result.wall_ns, meter->TotalBusy(), cpu_cores, gpu_busy, nvdec,
                      static_cast<int>(jobs.size()));
    for (RunMetrics& metrics : result.per_task) {
      metrics.energy = energy;
    }
  }
  return result;
}

Result<DdpResult> RunDdp(std::vector<MultiTaskJob> ranks, const DdpOptions& options,
                         CpuMeter* meter) {
  (void)meter;
  if (ranks.empty() || static_cast<int>(ranks.size()) != options.world_size) {
    return InvalidArgument("ddp: ranks must match world_size");
  }
  const int world = options.world_size;
  DdpResult result;
  result.per_rank.resize(ranks.size());

  // Per-step barrier standing in for the gradient allreduce.
  std::mutex barrier_mutex;
  std::condition_variable barrier_cv;
  int barrier_count = 0;
  int64_t barrier_generation = 0;
  auto arrive_and_wait = [&] {
    std::unique_lock<std::mutex> lock(barrier_mutex);
    int64_t generation = barrier_generation;
    if (++barrier_count == world) {
      barrier_count = 0;
      ++barrier_generation;
      barrier_cv.notify_all();
    } else {
      barrier_cv.wait(lock, [&] { return barrier_generation != generation; });
    }
  };

  std::mutex error_mutex;
  Status first_error = Status::Ok();
  int64_t ipe_global = ranks[0].source->IterationsPerEpoch();
  int64_t steps_per_epoch = ipe_global / world;

  for (MultiTaskJob& rank : ranks) {
    rank.gpu->BeginRun();
  }
  Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(ranks.size());
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      MultiTaskJob& rank = ranks[static_cast<size_t>(r)];
      RunMetrics& metrics = result.per_rank[static_cast<size_t>(r)];
      Stopwatch rank_watch;
      for (int64_t epoch = 0; epoch < options.epochs; ++epoch) {
        for (int64_t step = 0; step < steps_per_epoch; ++step) {
          int64_t iteration = step * world + r;  // rank-private shard
          Stopwatch stall;
          Result<SharedBytes> batch = rank.source->NextBatch(epoch, iteration);
          if (!batch.ok()) {
            std::lock_guard<std::mutex> lock(error_mutex);
            if (first_error.ok()) {
              first_error = batch.status();
            }
            // Keep hitting barriers so peers do not deadlock.
            batch = MakeSharedBytes({});
          }
          metrics.stall_ns += stall.Elapsed();
          metrics.bytes_consumed += (*batch)->size();
          rank.gpu->TrainStep(rank.profile.gpu_step);
          ++metrics.batches;
          arrive_and_wait();
        }
      }
      rank.source->Finish();
      metrics.wall_ns = rank_watch.Elapsed();
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  result.wall_ns = wall.Elapsed();
  double util_sum = 0;
  for (size_t r = 0; r < ranks.size(); ++r) {
    ranks[r].gpu->EndRun();
    GpuRunStats stats = ranks[r].gpu->run_stats();
    result.per_rank[r].gpu_busy_ns = stats.busy_ns;
    result.per_rank[r].gpu_nvdec_ns = stats.nvdec_ns;
    util_sum += stats.Utilization();
  }
  result.avg_gpu_utilization = util_sum / static_cast<double>(ranks.size());
  if (!first_error.ok()) {
    return first_error;
  }
  return result;
}

}  // namespace sand
