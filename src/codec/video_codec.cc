#include "src/codec/video_codec.h"

#include <algorithm>
#include <array>
#include <condition_variable>
#include <cstring>
#include <mutex>

#include "src/common/strings.h"
#include "src/common/threading.h"
#include "src/compress/lossless.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/tensor/pixel_kernels.h"

namespace sand {
namespace {

// Process-global decode counters (the per-decoder AtomicDecodeStats are the
// instance-scoped view benches diff; these feed /.sand/metrics).
struct GlobalDecodeMetrics {
  obs::Counter* frames_requested;
  obs::Counter* frames_decoded;
  obs::Counter* bytes_read;
  obs::Counter* seeks;
  obs::Histogram* frame_latency_ns;

  static const GlobalDecodeMetrics& Get() {
    static const GlobalDecodeMetrics metrics{
        obs::Registry::Get().GetCounter("sand.decode.frames_requested"),
        obs::Registry::Get().GetCounter("sand.decode.frames_decoded"),
        obs::Registry::Get().GetCounter("sand.decode.bytes_read"),
        obs::Registry::Get().GetCounter("sand.decode.seeks"),
        obs::Registry::Get().GetHistogram("sand.decode.frame_latency_ns"),
    };
    return metrics;
  }
};

constexpr std::array<uint8_t, 4> kMagic = {'S', 'V', 'C', '1'};
constexpr uint16_t kVersion = 1;
constexpr size_t kHeaderSize = 4 + 2 + 2 + 2 + 1 + 1 + 4;
constexpr size_t kIndexEntrySize = 1 + 8 + 4;
constexpr int kMaxGopSize = 255;  // the container header's u8 gop field

void PutU16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  PutU16(out, static_cast<uint16_t>(v));
  PutU16(out, static_cast<uint16_t>(v >> 16));
}

void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

uint16_t GetU16(std::span<const uint8_t> in, size_t offset) {
  return static_cast<uint16_t>(in[offset]) |
         static_cast<uint16_t>(static_cast<uint16_t>(in[offset + 1]) << 8);
}

uint32_t GetU32(std::span<const uint8_t> in, size_t offset) {
  return static_cast<uint32_t>(GetU16(in, offset)) |
         (static_cast<uint32_t>(GetU16(in, offset + 2)) << 16);
}

uint64_t GetU64(std::span<const uint8_t> in, size_t offset) {
  return static_cast<uint64_t>(GetU32(in, offset)) |
         (static_cast<uint64_t>(GetU32(in, offset + 4)) << 32);
}

// Per-byte wraparound difference; deltas of smooth motion are near zero and
// compress well with the lossless stage.
std::vector<uint8_t> TemporalDelta(const Frame& cur, const Frame& prev) {
  std::vector<uint8_t> delta(cur.size_bytes());
  DeltaEncodeBytes(cur.data(), prev.data(), delta);
  return delta;
}

void ApplyTemporalDelta(Frame& target, std::span<const uint8_t> delta) {
  // MutableData: the cursor frame may be shared with a frame previously
  // returned to a caller; copy-on-write keeps that frame intact.
  DeltaApplyBytes(target.MutableData(), delta);
}

}  // namespace

VideoEncoder::VideoEncoder(int height, int width, int channels, VideoEncoderOptions options)
    : height_(height), width_(width), channels_(channels), options_(options) {
  if (options_.gop_size < 1) {
    options_.gop_size = 1;
  }
  if (options_.gop_size > kMaxGopSize) {
    // The container header stores the GOP size as a u8; a silent cast would
    // corrupt it (e.g. 256 -> 0). Poison the encoder instead.
    init_status_ = InvalidArgument(
        StrFormat("gop_size %d exceeds container limit %d", options_.gop_size, kMaxGopSize));
  }
}

Status VideoEncoder::AddFrame(const Frame& frame) {
  if (!init_status_.ok()) {
    return init_status_;
  }
  if (finished_) {
    return FailedPrecondition("encoder already finished");
  }
  if (frame.height() != height_ || frame.width() != width_ || frame.channels() != channels_) {
    return InvalidArgument("frame shape does not match encoder configuration");
  }
  const size_t stride = static_cast<size_t>(width_) * channels_;
  const bool intra = (index_.size() % static_cast<size_t>(options_.gop_size)) == 0;

  Result<std::vector<uint8_t>> compressed =
      intra ? LosslessCompress(frame.data(), stride)
            : LosslessCompress(TemporalDelta(frame, previous_), stride);
  if (!compressed.ok()) {
    return compressed.status();
  }
  index_.push_back(IndexEntry{intra ? FrameType::kIntra : FrameType::kDelta,
                              static_cast<uint64_t>(payload_.size()),
                              static_cast<uint32_t>(compressed->size())});
  payload_.insert(payload_.end(), compressed->begin(), compressed->end());
  previous_ = frame;
  return Status::Ok();
}

Result<std::vector<uint8_t>> VideoEncoder::Finish() {
  if (!init_status_.ok()) {
    return init_status_;
  }
  if (finished_) {
    return FailedPrecondition("encoder already finished");
  }
  if (index_.empty()) {
    return FailedPrecondition("no frames added");
  }
  finished_ = true;
  std::vector<uint8_t> out;
  out.reserve(kHeaderSize + index_.size() * kIndexEntrySize + payload_.size());
  out.insert(out.end(), kMagic.begin(), kMagic.end());
  PutU16(out, kVersion);
  PutU16(out, static_cast<uint16_t>(width_));
  PutU16(out, static_cast<uint16_t>(height_));
  out.push_back(static_cast<uint8_t>(channels_));
  out.push_back(static_cast<uint8_t>(options_.gop_size));
  PutU32(out, static_cast<uint32_t>(index_.size()));
  for (const IndexEntry& entry : index_) {
    out.push_back(static_cast<uint8_t>(entry.type));
    PutU64(out, entry.offset);
    PutU32(out, entry.size);
  }
  out.insert(out.end(), payload_.begin(), payload_.end());
  return out;
}

Status VideoDecoder::DecodeStep(const Parsed& parsed, int64_t index, Frame& cursor,
                                AtomicDecodeStats& stats) {
  const VideoDecoder::IndexEntry& entry = parsed.index[static_cast<size_t>(index)];
  std::span<const uint8_t> payload(parsed.container->data() + parsed.payload_base + entry.offset,
                                   entry.size);
  stats.bytes_read.fetch_add(entry.size, std::memory_order_relaxed);
  GlobalDecodeMetrics::Get().bytes_read->Add(entry.size);
  Result<std::vector<uint8_t>> raw = LosslessDecompress(payload);
  if (!raw.ok()) {
    return raw.status();
  }
  if (entry.type == FrameType::kIntra) {
    cursor = Frame(parsed.height, parsed.width, parsed.channels, raw.TakeValue());
  } else {
    ApplyTemporalDelta(cursor, *raw);
  }
  stats.frames_decoded.fetch_add(1, std::memory_order_relaxed);
  GlobalDecodeMetrics::Get().frames_decoded->Add(1);
  return Status::Ok();
}

Result<int64_t> VideoDecoder::GopStartIn(const Parsed& parsed, int64_t index) {
  if (index < 0 || index >= static_cast<int64_t>(parsed.index.size())) {
    return OutOfRange(StrFormat("frame %lld out of range", static_cast<long long>(index)));
  }
  int64_t i = index;
  while (parsed.index[static_cast<size_t>(i)].type != FrameType::kIntra) {
    --i;  // frame 0 is always intra, so this terminates
  }
  return i;
}

Result<VideoDecoder> VideoDecoder::Open(std::vector<uint8_t> container) {
  return Open(MakeSharedBytes(std::move(container)));
}

Result<VideoDecoder> VideoDecoder::Open(SharedBytes container) {
  if (container == nullptr) {
    return InvalidArgument("null container");
  }
  if (container->size() < kHeaderSize ||
      !std::equal(kMagic.begin(), kMagic.end(), container->begin())) {
    return DataLoss("not an SVC1 container");
  }
  std::span<const uint8_t> bytes(*container);
  uint16_t version = GetU16(bytes, 4);
  if (version != kVersion) {
    return DataLoss(StrFormat("unsupported container version %u", version));
  }
  auto parsed = std::make_shared<Parsed>();
  parsed->width = GetU16(bytes, 6);
  parsed->height = GetU16(bytes, 8);
  parsed->channels = bytes[10];
  parsed->gop_size = bytes[11];
  uint32_t frame_count = GetU32(bytes, 12);
  if (parsed->gop_size < 1 || frame_count == 0) {
    return DataLoss("corrupt container header");
  }
  size_t index_bytes = static_cast<size_t>(frame_count) * kIndexEntrySize;
  if (container->size() < kHeaderSize + index_bytes) {
    return DataLoss("container index truncated");
  }
  parsed->index.reserve(frame_count);
  size_t pos = kHeaderSize;
  for (uint32_t i = 0; i < frame_count; ++i) {
    IndexEntry entry;
    entry.type = static_cast<FrameType>(bytes[pos]);
    entry.offset = GetU64(bytes, pos + 1);
    entry.size = GetU32(bytes, pos + 9);
    if (entry.type != FrameType::kIntra && entry.type != FrameType::kDelta) {
      return DataLoss("corrupt frame type");
    }
    parsed->index.push_back(entry);
    pos += kIndexEntrySize;
  }
  parsed->payload_base = pos;
  const IndexEntry& last = parsed->index.back();
  if (container->size() < parsed->payload_base + last.offset + last.size) {
    return DataLoss("container payload truncated");
  }
  parsed->container = std::move(container);
  VideoDecoder decoder;
  decoder.parsed_ = std::move(parsed);
  return decoder;
}

int VideoDecoder::height() const { return parsed_->height; }
int VideoDecoder::width() const { return parsed_->width; }
int VideoDecoder::channels() const { return parsed_->channels; }
int VideoDecoder::gop_size() const { return parsed_->gop_size; }
int64_t VideoDecoder::frame_count() const { return static_cast<int64_t>(parsed_->index.size()); }

Result<int64_t> VideoDecoder::GopStart(int64_t index) const {
  return GopStartIn(*parsed_, index);
}

GopDecoder VideoDecoder::SliceDecoder() const { return GopDecoder(parsed_, stats_); }

Status VideoDecoder::DecodeIntoCursor(int64_t index) {
  SAND_RETURN_IF_ERROR(DecodeStep(*parsed_, index, cursor_frame_, *stats_));
  cursor_index_ = index;
  return Status::Ok();
}

Result<Frame> VideoDecoder::DecodeFrame(int64_t index) {
  if (index < 0 || index >= frame_count()) {
    return OutOfRange(StrFormat("frame %lld out of range", static_cast<long long>(index)));
  }
  const GlobalDecodeMetrics& metrics = GlobalDecodeMetrics::Get();
  stats_->frames_requested.fetch_add(1, std::memory_order_relaxed);
  metrics.frames_requested->Add(1);
  if (cursor_index_ && *cursor_index_ == index) {
    return cursor_frame_;  // repeat request; no decode work
  }
  SAND_SPAN("decode");
  Nanos start_ns = SinceProcessStart();
  SAND_ASSIGN_OR_RETURN(int64_t gop_start, GopStart(index));
  int64_t start;
  if (cursor_index_ && *cursor_index_ < index && *cursor_index_ >= gop_start) {
    start = *cursor_index_ + 1;  // continue the current forward run
  } else {
    start = gop_start;
    stats_->seeks.fetch_add(1, std::memory_order_relaxed);
    metrics.seeks->Add(1);
  }
  if (start < index) {
    // The decode-amplification work: frames reconstructed only to reach
    // the requested one. Visible as its own stage in captured traces.
    SAND_SPAN("gop_seek");
    for (int64_t i = start; i < index; ++i) {
      SAND_RETURN_IF_ERROR(DecodeIntoCursor(i));
    }
  }
  SAND_RETURN_IF_ERROR(DecodeIntoCursor(index));
  metrics.frame_latency_ns->Record(static_cast<uint64_t>(SinceProcessStart() - start_ns));
  return cursor_frame_;
}

DecodeStats VideoDecoder::stats() const {
  DecodeStats snapshot;
  snapshot.frames_requested = stats_->frames_requested.load(std::memory_order_relaxed);
  snapshot.frames_decoded = stats_->frames_decoded.load(std::memory_order_relaxed);
  snapshot.bytes_read = stats_->bytes_read.load(std::memory_order_relaxed);
  snapshot.seeks = stats_->seeks.load(std::memory_order_relaxed);
  return snapshot;
}

void VideoDecoder::ResetStats() {
  stats_->frames_requested.store(0, std::memory_order_relaxed);
  stats_->frames_decoded.store(0, std::memory_order_relaxed);
  stats_->bytes_read.store(0, std::memory_order_relaxed);
  stats_->seeks.store(0, std::memory_order_relaxed);
}

Result<std::vector<Frame>> VideoDecoder::DecodeFrames(std::span<const int64_t> indices) {
  std::vector<size_t> order(indices.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return indices[a] < indices[b]; });
  std::vector<Frame> out(indices.size());
  for (size_t slot : order) {
    SAND_ASSIGN_OR_RETURN(Frame frame, DecodeFrame(indices[slot]));
    out[slot] = std::move(frame);
  }
  return out;
}

Result<std::vector<Frame>> VideoDecoder::DecodeFrames(std::span<const int64_t> indices,
                                                      WorkerPool* pool) {
  if (pool == nullptr) {
    return DecodeFrames(indices);
  }
  if (indices.empty()) {
    return std::vector<Frame>{};
  }
  for (int64_t index : indices) {
    if (index < 0 || index >= frame_count()) {
      return OutOfRange(StrFormat("frame %lld out of range", static_cast<long long>(index)));
    }
  }
  std::vector<size_t> order(indices.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return indices[a] < indices[b]; });

  // Partition the sorted walk into GOP runs. `boundary` is the first frame
  // index beyond the current run (the next I-frame, or frame_count).
  struct Slice {
    int64_t gop_start = 0;
    std::vector<int64_t> indices;  // ascending, duplicates allowed
    std::vector<size_t> slots;     // result slot per index
  };
  std::vector<Slice> slices;
  int64_t boundary = -1;
  for (size_t slot : order) {
    int64_t index = indices[slot];
    if (slices.empty() || index >= boundary) {
      SAND_ASSIGN_OR_RETURN(int64_t gop_start, GopStart(index));
      boundary = index + 1;
      while (boundary < frame_count() &&
             parsed_->index[static_cast<size_t>(boundary)].type != FrameType::kIntra) {
        ++boundary;
      }
      slices.push_back(Slice{gop_start, {}, {}});
    }
    slices.back().indices.push_back(index);
    slices.back().slots.push_back(slot);
  }

  SAND_SPAN("decode_parallel");
  GopDecoder slice_decoder = SliceDecoder();
  std::vector<Frame> out(indices.size());
  std::vector<Status> results(slices.size(), Status::Ok());

  // Completion latch: pool tasks count down; the caller runs slice 0 (and
  // any slice the saturated pool refuses) inline, then waits for the rest.
  struct Latch {
    std::mutex mutex;
    std::condition_variable cv;
    size_t remaining;
  };
  Latch latch{{}, {}, slices.size()};
  auto run_slice = [&](size_t s) {
    const Slice& slice = slices[s];
    Result<std::vector<Frame>> frames = slice_decoder.DecodeSlice(slice.gop_start, slice.indices);
    if (frames.ok()) {
      for (size_t i = 0; i < slice.slots.size(); ++i) {
        out[slice.slots[i]] = std::move((*frames)[i]);
      }
    } else {
      results[s] = frames.status();
    }
    {
      // Notify under the lock: the waiter destroys the latch as soon as it
      // observes remaining == 0, so an unlocked notify could touch a dead cv.
      std::lock_guard<std::mutex> lock(latch.mutex);
      --latch.remaining;
      latch.cv.notify_one();
    }
  };
  for (size_t s = 1; s < slices.size(); ++s) {
    if (!pool->TrySubmit([&run_slice, s] { run_slice(s); })) {
      run_slice(s);  // pool saturated: the caller decodes this slice itself
    }
  }
  run_slice(0);
  {
    std::unique_lock<std::mutex> lock(latch.mutex);
    latch.cv.wait(lock, [&] { return latch.remaining == 0; });
  }
  for (const Status& status : results) {
    SAND_RETURN_IF_ERROR(status);
  }
  return out;
}

Result<GopDecoder> GopDecoder::Open(SharedBytes container) {
  SAND_ASSIGN_OR_RETURN(VideoDecoder decoder, VideoDecoder::Open(std::move(container)));
  return decoder.SliceDecoder();
}

Result<int64_t> GopDecoder::GopStart(int64_t index) const {
  return VideoDecoder::GopStartIn(*parsed_, index);
}

DecodeStats GopDecoder::stats() const {
  DecodeStats snapshot;
  snapshot.frames_requested = stats_->frames_requested.load(std::memory_order_relaxed);
  snapshot.frames_decoded = stats_->frames_decoded.load(std::memory_order_relaxed);
  snapshot.bytes_read = stats_->bytes_read.load(std::memory_order_relaxed);
  snapshot.seeks = stats_->seeks.load(std::memory_order_relaxed);
  return snapshot;
}

Result<std::vector<Frame>> GopDecoder::DecodeSlice(int64_t gop_start,
                                                   std::span<const int64_t> indices) const {
  if (indices.empty()) {
    return std::vector<Frame>{};
  }
  if (gop_start < 0 || gop_start >= frame_count() ||
      parsed_->index[static_cast<size_t>(gop_start)].type != FrameType::kIntra) {
    return InvalidArgument(
        StrFormat("slice start %lld is not an I-frame", static_cast<long long>(gop_start)));
  }
  int64_t previous = gop_start;
  for (int64_t index : indices) {
    if (index < previous) {
      return InvalidArgument("slice indices must be ascending and >= the slice start");
    }
    if (index >= frame_count()) {
      return OutOfRange(StrFormat("frame %lld out of range", static_cast<long long>(index)));
    }
    previous = index;
  }
  const GlobalDecodeMetrics& metrics = GlobalDecodeMetrics::Get();
  stats_->frames_requested.fetch_add(indices.size(), std::memory_order_relaxed);
  metrics.frames_requested->Add(indices.size());
  stats_->seeks.fetch_add(1, std::memory_order_relaxed);
  metrics.seeks->Add(1);

  SAND_SPAN("gop_slice_decode");
  const int64_t max_index = indices.back();
  Frame cursor;
  std::vector<Frame> out;
  out.reserve(indices.size());
  size_t next = 0;
  for (int64_t i = gop_start; i <= max_index; ++i) {
    if (i > gop_start && parsed_->index[static_cast<size_t>(i)].type == FrameType::kIntra) {
      return InvalidArgument(
          StrFormat("slice index %lld crosses into the next GOP (I-frame at %lld)",
                    static_cast<long long>(max_index), static_cast<long long>(i)));
    }
    SAND_RETURN_IF_ERROR(VideoDecoder::DecodeStep(*parsed_, i, cursor, *stats_));
    while (next < indices.size() && indices[next] == i) {
      out.push_back(cursor);
      ++next;
    }
  }
  return out;
}

}  // namespace sand
