// A from-scratch GOP-structured video codec.
//
// Stands in for libvpx/openh264 in the paper's pipeline. The essential
// property SAND exploits — and this codec reproduces — is inter-frame
// dependency: frames are grouped into GOPs of `gop_size`; each GOP starts
// with an intra-coded I-frame and continues with temporally delta-coded
// P-frames. Randomly accessing frame i therefore requires decoding forward
// from the preceding I-frame, so sparse frame selection decodes many more
// frames than it uses (decode amplification), at real CPU cost.
//
// GOPs are also the unit of intra-video parallelism (DESIGN.md §9): every
// GOP decodes independently from its own I-frame, so a slice decoder
// (GopDecoder) can reconstruct disjoint GOP runs on different threads with
// bit-identical output to the serial cursor walk.
//
// Container layout ("SVC1"):
//   header  : magic(4) ver(u16) width(u16) height(u16) channels(u8)
//             gop(u8) frame_count(u32)
//   index   : frame_count x { type(u8) offset(u64) size(u32) }
//   payload : per-frame compressed bytes (lossless; I = intra, P = delta
//             against the previous reconstructed frame)

#ifndef SAND_CODEC_VIDEO_CODEC_H_
#define SAND_CODEC_VIDEO_CODEC_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/common/worker_pool.h"
#include "src/tensor/frame.h"

namespace sand {

enum class FrameType : uint8_t {
  kIntra = 0,  // I-frame: self-contained
  kDelta = 1,  // P-frame: depends on the previous frame
};

struct VideoEncoderOptions {
  // Frames per GOP. Valid range [1, 255] (the container header stores the
  // GOP size as a u8); 1 = all-intra. Values < 1 are clamped to 1; values
  // > 255 poison the encoder: AddFrame/Finish return InvalidArgument
  // instead of silently truncating the header field.
  int gop_size = 8;
};

// Streaming encoder: feed frames in display order, then Finish().
class VideoEncoder {
 public:
  VideoEncoder(int height, int width, int channels, VideoEncoderOptions options = {});

  // All frames must share the shape given at construction.
  Status AddFrame(const Frame& frame);

  // Produces the container bytes. The encoder is spent afterwards.
  Result<std::vector<uint8_t>> Finish();

  int frame_count() const { return static_cast<int>(index_.size()); }

 private:
  struct IndexEntry {
    FrameType type;
    uint64_t offset;
    uint32_t size;
  };

  int height_;
  int width_;
  int channels_;
  VideoEncoderOptions options_;
  Status init_status_ = Status::Ok();  // invalid construction options
  Frame previous_;  // last reconstructed frame (== source frame: codec is lossless)
  std::vector<IndexEntry> index_;
  std::vector<uint8_t> payload_;
  bool finished_ = false;
};

// Cumulative decoder-side counters; the source of the "frames decoded vs
// frames used" numbers in Fig. 3 / Fig. 16. A value snapshot — the decoder
// maintains these atomically (obs registry counters), so stats() and
// ResetStats() are safe against a concurrent decode on another thread.
// Slice decoders created from a VideoDecoder share its counters, so a
// GOP-parallel DecodeFrames books into the same stats as the serial walk.
struct DecodeStats {
  uint64_t frames_requested = 0;  // frames the caller asked for
  uint64_t frames_decoded = 0;    // frames actually reconstructed
  uint64_t bytes_read = 0;        // compressed payload bytes consumed
  uint64_t seeks = 0;             // cursor restarts at an I-frame

  double Amplification() const {
    return frames_requested == 0
               ? 0.0
               : static_cast<double>(frames_decoded) / static_cast<double>(frames_requested);
  }
};

class GopDecoder;

// Random-access decoder with a single forward cursor. Decoding frame i
// restarts at the preceding I-frame unless the cursor already sits at or
// before i within the same GOP run.
class VideoDecoder {
 public:
  // Primary entry point: the decoder holds a reference to the shared
  // container, so N concurrent decoders over one video (e.g. demand jobs
  // fed by the ContainerCache) share a single copy of the encoded bytes.
  static Result<VideoDecoder> Open(SharedBytes container);
  // Compat wrapper: adopts the vector (moved, not copied) into a SharedBytes.
  static Result<VideoDecoder> Open(std::vector<uint8_t> container);

  int height() const;
  int width() const;
  int channels() const;
  int gop_size() const;
  int64_t frame_count() const;

  // Decodes a single frame by display index.
  Result<Frame> DecodeFrame(int64_t index);

  // Decodes a set of indices (need not be sorted; duplicates allowed).
  // Sorted internally so one forward pass per GOP run suffices.
  Result<std::vector<Frame>> DecodeFrames(std::span<const int64_t> indices);

  // GOP-parallel variant: partitions the sorted indices by GOP and fans the
  // slices out on `pool` (stateless GopDecoder per slice, no shared
  // cursor). Bit-identical output and — from a cold cursor — identical
  // DecodeStats to the serial walk. When the pool refuses a slice
  // (saturation), that slice runs inline on the caller; `pool == nullptr`
  // falls back to the serial path. The forward cursor is neither consulted
  // nor advanced.
  Result<std::vector<Frame>> DecodeFrames(std::span<const int64_t> indices, WorkerPool* pool);

  // A stateless slice decoder sharing this decoder's parsed container and
  // stats counters. Cheap to copy; safe to use from many threads at once.
  GopDecoder SliceDecoder() const;

  // Index of the I-frame at or before `index`.
  Result<int64_t> GopStart(int64_t index) const;

  // Snapshot / reset of the per-decoder counters. Atomic against
  // concurrent DecodeFrame calls (which themselves still need external
  // serialization — the forward cursor is single-threaded state).
  DecodeStats stats() const;
  void ResetStats();

 private:
  friend class GopDecoder;

  struct IndexEntry {
    FrameType type;
    uint64_t offset;
    uint32_t size;
  };

  // Everything parsed out of the container at Open time. Immutable after
  // Open, shared (read-only) by the decoder and all of its slice decoders.
  struct Parsed {
    int height = 0;
    int width = 0;
    int channels = 0;
    int gop_size = 0;
    std::vector<IndexEntry> index;
    SharedBytes container;
    size_t payload_base = 0;
  };

  // Atomic per-decoder counters (heap-held so the decoder stays movable and
  // slice decoders can share them).
  struct AtomicDecodeStats {
    std::atomic<uint64_t> frames_requested{0};
    std::atomic<uint64_t> frames_decoded{0};
    std::atomic<uint64_t> bytes_read{0};
    std::atomic<uint64_t> seeks{0};
  };

  VideoDecoder() = default;

  // Reconstructs frame `index` of `parsed` on top of `cursor` (replaced by
  // intra frames, delta-patched by P-frames) and books the decode. The
  // shared body of the cursor walk and the stateless slice path.
  static Status DecodeStep(const Parsed& parsed, int64_t index, Frame& cursor,
                           AtomicDecodeStats& stats);
  static Result<int64_t> GopStartIn(const Parsed& parsed, int64_t index);

  // Reconstructs frame `index` assuming the cursor holds frame index-1 (for
  // delta frames) or nothing (for intra frames).
  Status DecodeIntoCursor(int64_t index);

  std::shared_ptr<const Parsed> parsed_;

  // Forward cursor: the most recently reconstructed frame.
  std::optional<int64_t> cursor_index_;
  Frame cursor_frame_;

  std::shared_ptr<AtomicDecodeStats> stats_ = std::make_shared<AtomicDecodeStats>();
};

// Stateless GOP slice decoder: reconstructs frames of one GOP run
// independently, starting from the run's I-frame, without any shared
// cursor. All methods are const and thread-safe; one GopDecoder (or cheap
// copies of it) can decode many slices concurrently. This is the unit of
// intra-video parallelism: VideoDecoder::DecodeFrames(indices, pool) and
// SubtreeExecutor's GOP-parallel materialization are built on it.
class GopDecoder {
 public:
  // Parses a container of its own (fresh stats counters). To share an
  // existing decoder's container and stats, use VideoDecoder::SliceDecoder.
  static Result<GopDecoder> Open(SharedBytes container);

  int height() const { return parsed_->height; }
  int width() const { return parsed_->width; }
  int channels() const { return parsed_->channels; }
  int gop_size() const { return parsed_->gop_size; }
  int64_t frame_count() const { return static_cast<int64_t>(parsed_->index.size()); }

  // Index of the I-frame at or before `index`.
  Result<int64_t> GopStart(int64_t index) const;

  // Decodes the given indices, which must be ascending (duplicates allowed)
  // and must all lie within the GOP run starting at `gop_start` (an I-frame
  // index). One forward pass from the I-frame to the largest requested
  // index; returns the frames in the order requested. Books one seek, one
  // request per index, and one decode per reconstructed frame into the
  // shared stats — the same accounting as a cold serial walk of the run.
  Result<std::vector<Frame>> DecodeSlice(int64_t gop_start,
                                         std::span<const int64_t> indices) const;

  // Snapshot of the (possibly shared) counters.
  DecodeStats stats() const;

 private:
  friend class VideoDecoder;

  GopDecoder(std::shared_ptr<const VideoDecoder::Parsed> parsed,
             std::shared_ptr<VideoDecoder::AtomicDecodeStats> stats)
      : parsed_(std::move(parsed)), stats_(std::move(stats)) {}

  std::shared_ptr<const VideoDecoder::Parsed> parsed_;
  std::shared_ptr<VideoDecoder::AtomicDecodeStats> stats_;
};

}  // namespace sand

#endif  // SAND_CODEC_VIDEO_CODEC_H_
