// A from-scratch GOP-structured video codec.
//
// Stands in for libvpx/openh264 in the paper's pipeline. The essential
// property SAND exploits — and this codec reproduces — is inter-frame
// dependency: frames are grouped into GOPs of `gop_size`; each GOP starts
// with an intra-coded I-frame and continues with temporally delta-coded
// P-frames. Randomly accessing frame i therefore requires decoding forward
// from the preceding I-frame, so sparse frame selection decodes many more
// frames than it uses (decode amplification), at real CPU cost.
//
// Container layout ("SVC1"):
//   header  : magic(4) ver(u16) width(u16) height(u16) channels(u8)
//             gop(u8) frame_count(u32)
//   index   : frame_count x { type(u8) offset(u64) size(u32) }
//   payload : per-frame compressed bytes (lossless; I = intra, P = delta
//             against the previous reconstructed frame)

#ifndef SAND_CODEC_VIDEO_CODEC_H_
#define SAND_CODEC_VIDEO_CODEC_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/tensor/frame.h"

namespace sand {

enum class FrameType : uint8_t {
  kIntra = 0,  // I-frame: self-contained
  kDelta = 1,  // P-frame: depends on the previous frame
};

struct VideoEncoderOptions {
  int gop_size = 8;  // frames per GOP (>= 1); 1 = all-intra
};

// Streaming encoder: feed frames in display order, then Finish().
class VideoEncoder {
 public:
  VideoEncoder(int height, int width, int channels, VideoEncoderOptions options = {});

  // All frames must share the shape given at construction.
  Status AddFrame(const Frame& frame);

  // Produces the container bytes. The encoder is spent afterwards.
  Result<std::vector<uint8_t>> Finish();

  int frame_count() const { return static_cast<int>(index_.size()); }

 private:
  struct IndexEntry {
    FrameType type;
    uint64_t offset;
    uint32_t size;
  };

  int height_;
  int width_;
  int channels_;
  VideoEncoderOptions options_;
  Frame previous_;  // last reconstructed frame (== source frame: codec is lossless)
  std::vector<IndexEntry> index_;
  std::vector<uint8_t> payload_;
  bool finished_ = false;
};

// Cumulative decoder-side counters; the source of the "frames decoded vs
// frames used" numbers in Fig. 3 / Fig. 16. A value snapshot — the decoder
// maintains these atomically (obs registry counters), so stats() and
// ResetStats() are safe against a concurrent decode on another thread.
struct DecodeStats {
  uint64_t frames_requested = 0;  // frames the caller asked for
  uint64_t frames_decoded = 0;    // frames actually reconstructed
  uint64_t bytes_read = 0;        // compressed payload bytes consumed
  uint64_t seeks = 0;             // cursor restarts at an I-frame

  double Amplification() const {
    return frames_requested == 0
               ? 0.0
               : static_cast<double>(frames_decoded) / static_cast<double>(frames_requested);
  }
};

// Random-access decoder with a single forward cursor. Decoding frame i
// restarts at the preceding I-frame unless the cursor already sits at or
// before i within the same GOP run.
class VideoDecoder {
 public:
  // Primary entry point: the decoder holds a reference to the shared
  // container, so N concurrent decoders over one video (e.g. demand jobs
  // fed by the ContainerCache) share a single copy of the encoded bytes.
  static Result<VideoDecoder> Open(SharedBytes container);
  // Compat wrapper: adopts the vector (moved, not copied) into a SharedBytes.
  static Result<VideoDecoder> Open(std::vector<uint8_t> container);

  int height() const { return height_; }
  int width() const { return width_; }
  int channels() const { return channels_; }
  int gop_size() const { return gop_size_; }
  int64_t frame_count() const { return static_cast<int64_t>(index_.size()); }

  // Decodes a single frame by display index.
  Result<Frame> DecodeFrame(int64_t index);

  // Decodes a set of indices (need not be sorted; duplicates allowed).
  // Sorted internally so one forward pass per GOP run suffices.
  Result<std::vector<Frame>> DecodeFrames(std::span<const int64_t> indices);

  // Index of the I-frame at or before `index`.
  Result<int64_t> GopStart(int64_t index) const;

  // Snapshot / reset of the per-decoder counters. Atomic against
  // concurrent DecodeFrame calls (which themselves still need external
  // serialization — the forward cursor is single-threaded state).
  DecodeStats stats() const;
  void ResetStats();

 private:
  struct IndexEntry {
    FrameType type;
    uint64_t offset;
    uint32_t size;
  };

  VideoDecoder() = default;

  // Reconstructs frame `index` assuming the cursor holds frame index-1 (for
  // delta frames) or nothing (for intra frames).
  Status DecodeIntoCursor(int64_t index);

  int height_ = 0;
  int width_ = 0;
  int channels_ = 0;
  int gop_size_ = 0;
  std::vector<IndexEntry> index_;
  SharedBytes container_;
  size_t payload_base_ = 0;

  // Forward cursor: the most recently reconstructed frame.
  std::optional<int64_t> cursor_index_;
  Frame cursor_frame_;

  // Atomic per-decoder counters (heap-held so the decoder stays movable).
  struct AtomicDecodeStats {
    std::atomic<uint64_t> frames_requested{0};
    std::atomic<uint64_t> frames_decoded{0};
    std::atomic<uint64_t> bytes_read{0};
    std::atomic<uint64_t> seeks{0};
  };
  std::shared_ptr<AtomicDecodeStats> stats_ = std::make_shared<AtomicDecodeStats>();
};

}  // namespace sand

#endif  // SAND_CODEC_VIDEO_CODEC_H_
