#include "src/net/client_pool.h"

#include <utility>

namespace sand {
namespace net {

Result<std::unique_ptr<ClientPool>> ClientPool::Connect(const Options& options) {
  if (options.connections <= 0) {
    return InvalidArgument("ClientPool::Connect: need at least one connection");
  }
  SandClient::Options per_conn = options.client;
  per_conn.max_inflight = options.max_inflight_per_conn;
  std::unique_ptr<ClientPool> pool(new ClientPool());
  for (int i = 0; i < options.connections; ++i) {
    auto client = SandClient::Connect(per_conn);
    if (!client.ok()) {
      return client.status();  // drops the already-dialed connections
    }
    pool->clients_.push_back(std::move(*client));
  }
  return pool;
}

size_t ClientPool::inflight() const {
  size_t total = 0;
  for (const auto& client : clients_) {
    total += client->inflight();
  }
  return total;
}

SandClient* ClientPool::LeastLoaded() const {
  SandClient* best = clients_.front().get();
  size_t best_load = best->inflight();
  for (size_t i = 1; i < clients_.size(); ++i) {
    size_t load = clients_[i]->inflight();
    if (load < best_load) {
      best = clients_[i].get();
      best_load = load;
    }
  }
  return best;
}

SandClient* ClientPool::OwnerOf(int fd) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = fd_owner_.find(fd);
  return it == fd_owner_.end() ? nullptr : it->second;
}

Result<int> ClientPool::Open(const std::string& path, const OpenOptions& options) {
  SandClient* client = LeastLoaded();
  SAND_ASSIGN_OR_RETURN(int fd, client->Open(path, options));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fd_owner_[fd] = client;
  }
  return fd;
}

Result<size_t> ClientPool::Read(int fd, std::span<uint8_t> buffer) {
  SandClient* owner = OwnerOf(fd);
  if (owner == nullptr) {
    return InvalidArgument("fd not owned by this pool");
  }
  return owner->Read(fd, buffer);
}

Result<size_t> ClientPool::PRead(int fd, std::span<uint8_t> buffer, uint64_t offset) {
  SandClient* owner = OwnerOf(fd);
  if (owner == nullptr) {
    return InvalidArgument("fd not owned by this pool");
  }
  return owner->PRead(fd, buffer, offset);
}

Result<SharedBytes> ClientPool::ReadAllShared(int fd) {
  SandClient* owner = OwnerOf(fd);
  if (owner == nullptr) {
    return InvalidArgument("fd not owned by this pool");
  }
  return owner->ReadAllShared(fd);
}

Future<SharedBytes> ClientPool::ReadAllSharedAsync(int fd) {
  SandClient* owner = OwnerOf(fd);
  if (owner == nullptr) {
    return Future<SharedBytes>::FromResult(
        Result<SharedBytes>(InvalidArgument("fd not owned by this pool")));
  }
  return owner->ReadAllSharedAsync(fd);
}

Result<uint64_t> ClientPool::SizeOf(int fd) {
  SandClient* owner = OwnerOf(fd);
  if (owner == nullptr) {
    return InvalidArgument("fd not owned by this pool");
  }
  return owner->SizeOf(fd);
}

Result<std::string> ClientPool::GetXattr(int fd, const std::string& name) {
  SandClient* owner = OwnerOf(fd);
  if (owner == nullptr) {
    return InvalidArgument("fd not owned by this pool");
  }
  return owner->GetXattr(fd, name);
}

Result<std::vector<std::string>> ClientPool::ListDir(const std::string& path) {
  return LeastLoaded()->ListDir(path);
}

Status ClientPool::Close(int fd) {
  SandClient* owner = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = fd_owner_.find(fd);
    if (it != fd_owner_.end()) {
      owner = it->second;
      fd_owner_.erase(it);
    }
  }
  if (owner == nullptr) {
    return InvalidArgument("fd not owned by this pool");
  }
  return owner->Close(fd);
}

}  // namespace net
}  // namespace sand
