#include "src/net/wire.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sand {
namespace net {

namespace {

void PutLe(std::vector<uint8_t>& out, uint64_t value, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out.push_back(static_cast<uint8_t>(value >> (8 * i)));
  }
}

uint64_t GetLe(const uint8_t* data, int bytes) {
  uint64_t value = 0;
  for (int i = 0; i < bytes; ++i) {
    value |= static_cast<uint64_t>(data[i]) << (8 * i);
  }
  return value;
}

bool WriteFull(int fd, const uint8_t* data, size_t count) {
  while (count > 0) {
    // MSG_NOSIGNAL: a peer that disconnected mid-response must surface as
    // EPIPE on this connection, not SIGPIPE terminating the whole
    // multi-tenant process. Pipes (ENOTSOCK) fall back to write(2).
    ssize_t n = ::send(fd, data, count, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) {
      n = ::write(fd, data, count);
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    data += n;
    count -= static_cast<size_t>(n);
  }
  return true;
}

bool ReadFull(int fd, uint8_t* data, size_t count) {
  while (count > 0) {
    ssize_t n = ::read(fd, data, count);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;  // EOF or error
    }
    data += n;
    count -= static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

void PutU8(std::vector<uint8_t>& out, uint8_t value) { out.push_back(value); }
void PutU16(std::vector<uint8_t>& out, uint16_t value) { PutLe(out, value, 2); }
void PutU32(std::vector<uint8_t>& out, uint32_t value) { PutLe(out, value, 4); }
void PutU64(std::vector<uint8_t>& out, uint64_t value) { PutLe(out, value, 8); }
void PutI32(std::vector<uint8_t>& out, int32_t value) {
  PutLe(out, static_cast<uint32_t>(value), 4);
}

void PutString(std::vector<uint8_t>& out, const std::string& value) {
  PutU32(out, static_cast<uint32_t>(value.size()));
  out.insert(out.end(), value.begin(), value.end());
}

void PutBytes(std::vector<uint8_t>& out, const std::vector<uint8_t>& value) {
  PutU32(out, static_cast<uint32_t>(value.size()));
  out.insert(out.end(), value.begin(), value.end());
}

Status WireReader::Need(size_t count) {
  if (buffer_.size() - pos_ < count) {
    return OutOfRange("truncated wire payload");
  }
  return Status::Ok();
}

Result<uint8_t> WireReader::TakeU8() {
  SAND_RETURN_IF_ERROR(Need(1));
  return buffer_[pos_++];
}

Result<uint16_t> WireReader::TakeU16() {
  SAND_RETURN_IF_ERROR(Need(2));
  uint16_t value = static_cast<uint16_t>(GetLe(buffer_.data() + pos_, 2));
  pos_ += 2;
  return value;
}

Result<uint32_t> WireReader::TakeU32() {
  SAND_RETURN_IF_ERROR(Need(4));
  uint32_t value = static_cast<uint32_t>(GetLe(buffer_.data() + pos_, 4));
  pos_ += 4;
  return value;
}

Result<uint64_t> WireReader::TakeU64() {
  SAND_RETURN_IF_ERROR(Need(8));
  uint64_t value = GetLe(buffer_.data() + pos_, 8);
  pos_ += 8;
  return value;
}

Result<int32_t> WireReader::TakeI32() {
  SAND_ASSIGN_OR_RETURN(uint32_t raw, TakeU32());
  return static_cast<int32_t>(raw);
}

Result<std::string> WireReader::TakeString() {
  SAND_ASSIGN_OR_RETURN(uint32_t size, TakeU32());
  SAND_RETURN_IF_ERROR(Need(size));
  std::string value(buffer_.begin() + static_cast<long>(pos_),
                    buffer_.begin() + static_cast<long>(pos_ + size));
  pos_ += size;
  return value;
}

Result<std::vector<uint8_t>> WireReader::TakeBytes() {
  SAND_ASSIGN_OR_RETURN(uint32_t size, TakeU32());
  SAND_RETURN_IF_ERROR(Need(size));
  std::vector<uint8_t> value(buffer_.begin() + static_cast<long>(pos_),
                             buffer_.begin() + static_cast<long>(pos_ + size));
  pos_ += size;
  return value;
}

std::vector<uint8_t> WireReader::TakeRest() {
  std::vector<uint8_t> rest(buffer_.begin() + static_cast<long>(pos_), buffer_.end());
  pos_ = buffer_.size();
  return rest;
}

Status WireReader::Skip(size_t count) {
  SAND_RETURN_IF_ERROR(Need(count));
  pos_ += count;
  return Status::Ok();
}

std::vector<uint8_t> EncodeOkHead() { return {0}; }

std::vector<uint8_t> EncodeErrorResponse(const Status& status) {
  std::vector<uint8_t> out;
  out.push_back(static_cast<uint8_t>(status.code()));
  const std::string& message = status.message();
  out.insert(out.end(), message.begin(), message.end());
  return out;
}

Status DecodeResponseStatus(const std::vector<uint8_t>& response) {
  if (response.empty()) {
    return Internal("empty response frame");
  }
  uint8_t code = response[0];
  if (code != 0) {
    if (code > static_cast<uint8_t>(ErrorCode::kInternal)) {
      code = static_cast<uint8_t>(ErrorCode::kInternal);
    }
    std::string message(response.begin() + 1, response.end());
    return Status(static_cast<ErrorCode>(code),
                  message.empty() ? "remote error" : message);
  }
  return Status::Ok();
}

bool WriteFrame(int fd, const std::vector<uint8_t>& payload) {
  if (payload.size() > kMaxFrameBytes) {
    return false;
  }
  uint8_t header[4];
  uint32_t size = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<uint8_t>(size >> (8 * i));
  }
  return WriteFull(fd, header, sizeof(header)) &&
         WriteFull(fd, payload.data(), payload.size());
}

bool WriteFrameScatter(int fd, const std::vector<uint8_t>& head,
                       const uint8_t* body, size_t body_size) {
  size_t total = head.size() + body_size;
  if (total > kMaxFrameBytes) {
    return false;
  }
  uint8_t header[4];
  uint32_t size = static_cast<uint32_t>(total);
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<uint8_t>(size >> (8 * i));
  }
  iovec iov[3];
  iov[0].iov_base = header;
  iov[0].iov_len = sizeof(header);
  iov[1].iov_base = const_cast<uint8_t*>(head.data());
  iov[1].iov_len = head.size();
  iov[2].iov_base = const_cast<uint8_t*>(body);
  iov[2].iov_len = body_size;
  int iov_count = body_size > 0 ? 3 : 2;
  size_t remaining = sizeof(header) + total;
  int first = 0;
  while (remaining > 0) {
    msghdr msg{};
    msg.msg_iov = iov + first;
    msg.msg_iovlen = static_cast<size_t>(iov_count - first);
    ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) {
      n = ::writev(fd, iov + first, iov_count - first);
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    remaining -= static_cast<size_t>(n);
    // Advance the iovec cursor past what the kernel took.
    size_t taken = static_cast<size_t>(n);
    while (first < iov_count && taken >= iov[first].iov_len) {
      taken -= iov[first].iov_len;
      ++first;
    }
    if (first < iov_count) {
      iov[first].iov_base = static_cast<uint8_t*>(iov[first].iov_base) + taken;
      iov[first].iov_len -= taken;
    }
  }
  return true;
}

bool ReadFrame(int fd, std::vector<uint8_t>& payload) {
  uint8_t header[4];
  if (!ReadFull(fd, header, sizeof(header))) {
    return false;
  }
  uint32_t size = static_cast<uint32_t>(GetLe(header, 4));
  if (size > kMaxFrameBytes) {
    return false;
  }
  payload.resize(size);
  return size == 0 || ReadFull(fd, payload.data(), size);
}

Result<int> ListenUnix(const std::string& path, int backlog) {
  if (path.empty() || path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return InvalidArgument("bad unix socket path: " + path);
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Internal(std::string("socket: ") + std::strerror(errno));
  }
  ::unlink(path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = Internal("bind " + path + ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, backlog) < 0) {
    Status status = Internal(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  return fd;
}

Result<int> ListenTcp(int port, int backlog, int* bound_port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = Internal("bind :" + std::to_string(port) + ": " +
                                     std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, backlog) < 0) {
    Status status = Internal(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      *bound_port = ntohs(bound.sin_port);
    }
  }
  return fd;
}

Result<int> ConnectUnix(const std::string& path) {
  if (path.empty() || path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return InvalidArgument("bad unix socket path: " + path);
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status =
        Unavailable("connect " + path + ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  return fd;
}

Result<int> ConnectTcp(const std::string& host, int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgument("bad host (IPv4 literal expected): " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = Unavailable("connect " + host + ":" + std::to_string(port) +
                                        ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  TuneStreamSocket(fd, /*keepalive=*/false);
  return fd;
}

void TuneStreamSocket(int fd, bool keepalive) {
  int one = 1;
  // TCP_NODELAY: a pipelined client sends many small request frames
  // back-to-back; letting Nagle batch them behind delayed ACKs turns
  // sub-millisecond round trips into 40 ms ones. Fails with ENOTSOCK /
  // EOPNOTSUPP on unix sockets and pipes, which is fine — those have no
  // Nagle to disable.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (keepalive) {
    ::setsockopt(fd, SOL_SOCKET, SO_KEEPALIVE, &one, sizeof(one));
  }
}

Result<uint32_t> PeerUid(int fd) {
  ucred cred{};
  socklen_t len = sizeof(cred);
  if (::getsockopt(fd, SOL_SOCKET, SO_PEERCRED, &cred, &len) != 0) {
    return FailedPrecondition(std::string("no peer credential: ") +
                              std::strerror(errno));
  }
  return static_cast<uint32_t>(cred.uid);
}

}  // namespace net
}  // namespace sand
