// SandClient: SandApi over a socket (DESIGN.md §13).
//
// The remote half of the one-API-two-transports split: a training loop
// written against SandApi runs unchanged whether it holds a SandFs or a
// SandClient. Connect() dials the server, performs the HELLO handshake
// binding the connection to a tenant tag and negotiating the protocol
// version, and returns a ready client.
//
// One connection, many requests in flight: the wire protocol is pipelined
// (v2 frames carry a u64 request id), so any number of threads may issue
// verbs concurrently and a single demultiplexing reader thread matches
// responses — which arrive in whatever order the server completes them —
// back to per-request Promises. The sync verbs are the async path plus a
// Get(); ReadAllSharedAsync exposes it directly so one thread can keep a
// window of reads outstanding.
//
// Against a v1 (serial-protocol) server the same machinery degrades
// gracefully: the HELLO negotiates version 1, frames carry no ids, and
// responses are matched FIFO — which is exactly the ordering a serial
// server guarantees. Callers should then keep at most one request in
// flight per connection (ClientPool and the sync verbs do this naturally
// when max_inflight is 1).
//
// Status codes round-trip: a RESOURCE_EXHAUSTED here is either the
// server's admission control talking or this client's own inflight cap
// (Options::max_inflight); retrying after a backoff is the intended
// response to both. A transport failure poisons the connection: every
// in-flight and future request fails fast with UNAVAILABLE instead of
// desynchronizing request/response pairing.

#ifndef SAND_NET_SAND_CLIENT_H_
#define SAND_NET_SAND_CLIENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/future.h"
#include "src/net/wire.h"
#include "src/vfs/sand_api.h"

namespace sand {
namespace net {

class SandClient : public SandApi {
 public:
  struct Options {
    // Dial a unix socket when unix_path is set, else host:port TCP.
    std::string unix_path;
    std::string host = "127.0.0.1";
    int port = -1;
    // Tenant tag sent in HELLO; required.
    std::string tenant;
    // Highest protocol version to offer in HELLO. The connection runs at
    // min(offered, server); set 1 to force the serial protocol (tests, or
    // talking to a pre-pipelining server that rejects unknown versions —
    // Connect retries at v1 automatically on a version-mismatch HELLO).
    uint16_t protocol_version = kProtocolVersion;
    // Max requests this connection keeps in flight; further issues fail
    // immediately with RESOURCE_EXHAUSTED (client-side backpressure, the
    // mirror of the server's tenant inflight quota). <= 0 means unlimited.
    int max_inflight = 0;
  };

  // Dials, handshakes, returns a connected client (or the HELLO error —
  // e.g. FAILED_PRECONDITION for an unknown tenant on a server with
  // auto-registration off, or for a peer-cred refusal).
  static Result<std::unique_ptr<SandClient>> Connect(const Options& options);

  ~SandClient() override;

  SandClient(const SandClient&) = delete;
  SandClient& operator=(const SandClient&) = delete;

  // Tenant id the server assigned at HELLO (obs::TenantRegistry dense id).
  uint32_t tenant_id() const { return tenant_id_; }
  // Protocol version negotiated at HELLO (1 = serial, 2 = pipelined).
  uint16_t negotiated_version() const { return version_; }
  // Requests currently awaiting a response (ClientPool's load signal).
  size_t inflight() const;

  using SandApi::Open;
  Result<int> Open(const std::string& path, const OpenOptions& options) override;
  Result<size_t> Read(int fd, std::span<uint8_t> buffer) override;
  Result<size_t> PRead(int fd, std::span<uint8_t> buffer, uint64_t offset) override;
  Result<SharedBytes> ReadAllShared(int fd) override;
  Future<SharedBytes> ReadAllSharedAsync(int fd) override;
  Result<uint64_t> SizeOf(int fd) override;
  Result<std::string> GetXattr(int fd, const std::string& name) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;
  Status Close(int fd) override;

  // Object-store verbs (cluster traffic, not part of SandApi): served only
  // by servers configured with an object-store backend. An object's
  // existence is data on this path, so StatObject answers (exists, size)
  // instead of failing on absence; a server without a backend answers
  // FAILED_PRECONDITION, and a pre-cluster server answers INVALID_ARGUMENT
  // ("unknown command") — callers treat both as "this node cannot serve".
  struct ObjectStat {
    bool exists = false;
    uint64_t size = 0;
  };
  Status PutObject(const std::string& key, std::span<const uint8_t> data);
  Result<SharedBytes> GetObjectShared(const std::string& key);
  Result<ObjectStat> StatObject(const std::string& key);
  Status DeleteObject(const std::string& key);

 private:
  SandClient(int socket_fd, uint16_t version)
      : socket_fd_(socket_fd), version_(version) {}

  // Sends one request (command byte + body) and returns a future for the
  // raw response payload (status head included, request id stripped).
  // Resolves with RESOURCE_EXHAUSTED at the inflight cap and UNAVAILABLE
  // on a dead connection.
  Future<std::vector<uint8_t>> Issue(std::vector<uint8_t> request);
  // Issue + Get + status decode: the sync round trip. On ok, `response`
  // holds the payload (status head at byte 0).
  Status Call(std::vector<uint8_t> request, std::vector<uint8_t>& response);

  // Demultiplexer: reads response frames, matches ids (or FIFO order on
  // v1) to pending promises. Exits when the stream dies, failing every
  // pending request with UNAVAILABLE.
  void ReaderLoop();
  void StartReader();
  // Fails all pending requests and marks the stream dead. Caller must not
  // hold mutex_.
  void Poison(const Status& status);

  mutable std::mutex mutex_;  // pending_, next_request_id_, dead_, writes
  std::map<uint64_t, Promise<std::vector<uint8_t>>> pending_;
  uint64_t next_request_id_ = 1;
  bool dead_ = false;

  std::thread reader_;
  int socket_fd_ = -1;
  uint16_t version_ = kProtocolVersion;
  uint32_t tenant_id_ = 0;
  int max_inflight_ = 0;
};

}  // namespace net
}  // namespace sand

#endif  // SAND_NET_SAND_CLIENT_H_
