// SandClient: SandApi over a socket (DESIGN.md §13).
//
// The remote half of the one-API-two-transports split: a training loop
// written against SandApi runs unchanged whether it holds a SandFs or a
// SandClient. Connect() dials the server, performs the HELLO handshake
// binding the connection to a tenant tag, and returns a ready client.
//
// One connection, serial requests: calls are serialized on an internal
// mutex (the protocol is strict request/response). Trainers wanting
// parallel reads open multiple clients — each is its own session, which
// is also the unit of server-side cleanup. Status codes round-trip: a
// RESOURCE_EXHAUSTED here is the server's admission control talking, and
// retrying after a backoff is the intended response.

#ifndef SAND_NET_SAND_CLIENT_H_
#define SAND_NET_SAND_CLIENT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/net/wire.h"
#include "src/vfs/sand_api.h"

namespace sand {
namespace net {

class SandClient : public SandApi {
 public:
  struct Options {
    // Dial a unix socket when unix_path is set, else host:port TCP.
    std::string unix_path;
    std::string host = "127.0.0.1";
    int port = -1;
    // Tenant tag sent in HELLO; required.
    std::string tenant;
  };

  // Dials, handshakes, returns a connected client (or the HELLO error —
  // e.g. FAILED_PRECONDITION for an unknown tenant on a server with
  // auto-registration off).
  static Result<std::unique_ptr<SandClient>> Connect(const Options& options);

  ~SandClient() override;

  SandClient(const SandClient&) = delete;
  SandClient& operator=(const SandClient&) = delete;

  // Tenant id the server assigned at HELLO (obs::TenantRegistry dense id).
  uint32_t tenant_id() const { return tenant_id_; }

  using SandApi::Open;
  Result<int> Open(const std::string& path, const OpenOptions& options) override;
  Result<size_t> Read(int fd, std::span<uint8_t> buffer) override;
  Result<size_t> PRead(int fd, std::span<uint8_t> buffer, uint64_t offset) override;
  Result<SharedBytes> ReadAllShared(int fd) override;
  Result<uint64_t> SizeOf(int fd) override;
  Result<std::string> GetXattr(int fd, const std::string& name) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;
  Status Close(int fd) override;

 private:
  explicit SandClient(int socket_fd) : socket_fd_(socket_fd) {}

  // One request/response round trip; on ok, `response` holds the full
  // payload (status head included). UNAVAILABLE when the connection died.
  Status RoundTrip(const std::vector<uint8_t>& request, std::vector<uint8_t>& response);

  std::mutex mutex_;
  int socket_fd_ = -1;
  uint32_t tenant_id_ = 0;
};

}  // namespace net
}  // namespace sand

#endif  // SAND_NET_SAND_CLIENT_H_
