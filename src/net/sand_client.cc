#include "src/net/sand_client.h"

#include <unistd.h>

#include <algorithm>
#include <cstring>

namespace sand {
namespace net {

namespace {

std::vector<uint8_t> RequestHead(Command command) {
  return {static_cast<uint8_t>(command)};
}

}  // namespace

Result<std::unique_ptr<SandClient>> SandClient::Connect(const Options& options) {
  if (options.tenant.empty()) {
    return InvalidArgument("SandClient::Connect: tenant tag is required");
  }
  Result<int> socket_fd = options.unix_path.empty()
                              ? ConnectTcp(options.host, options.port)
                              : ConnectUnix(options.unix_path);
  if (!socket_fd.ok()) {
    return socket_fd.status();
  }
  std::unique_ptr<SandClient> client(new SandClient(*socket_fd));

  std::vector<uint8_t> hello = RequestHead(Command::kHello);
  PutU16(hello, kProtocolVersion);
  PutString(hello, options.tenant);
  std::vector<uint8_t> response;
  SAND_RETURN_IF_ERROR(client->RoundTrip(hello, response));
  WireReader reader(response);
  (void)reader.TakeU8();  // status head, already checked
  SAND_ASSIGN_OR_RETURN(client->tenant_id_, reader.TakeU32());
  return client;
}

SandClient::~SandClient() {
  if (socket_fd_ >= 0) {
    ::close(socket_fd_);
  }
}

Status SandClient::RoundTrip(const std::vector<uint8_t>& request,
                             std::vector<uint8_t>& response) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (socket_fd_ < 0) {
    return Unavailable("connection closed");
  }
  if (!WriteFrame(socket_fd_, request) || !ReadFrame(socket_fd_, response)) {
    // A half-finished exchange poisons the stream; fail every later call
    // fast instead of desynchronizing request/response pairing.
    ::close(socket_fd_);
    socket_fd_ = -1;
    return Unavailable("server connection lost");
  }
  return DecodeResponseStatus(response);
}

Result<int> SandClient::Open(const std::string& path, const OpenOptions& options) {
  SAND_RETURN_IF_ERROR(options.Validate());
  std::vector<uint8_t> request = RequestHead(Command::kOpen);
  PutString(request, path);
  PutBytes(request, options.Serialize());
  std::vector<uint8_t> response;
  SAND_RETURN_IF_ERROR(RoundTrip(request, response));
  WireReader reader(response);
  (void)reader.TakeU8();
  SAND_ASSIGN_OR_RETURN(int fd, reader.TakeI32());
  return fd;
}

Result<size_t> SandClient::Read(int fd, std::span<uint8_t> buffer) {
  std::vector<uint8_t> request = RequestHead(Command::kRead);
  PutI32(request, fd);
  PutU64(request, buffer.size());
  std::vector<uint8_t> response;
  SAND_RETURN_IF_ERROR(RoundTrip(request, response));
  WireReader reader(response);
  (void)reader.TakeU8();
  SAND_ASSIGN_OR_RETURN(std::vector<uint8_t> data, reader.TakeBytes());
  size_t count = std::min(data.size(), buffer.size());
  std::memcpy(buffer.data(), data.data(), count);
  return count;
}

Result<size_t> SandClient::PRead(int fd, std::span<uint8_t> buffer, uint64_t offset) {
  std::vector<uint8_t> request = RequestHead(Command::kPRead);
  PutI32(request, fd);
  PutU64(request, offset);
  PutU64(request, buffer.size());
  std::vector<uint8_t> response;
  SAND_RETURN_IF_ERROR(RoundTrip(request, response));
  WireReader reader(response);
  (void)reader.TakeU8();
  SAND_ASSIGN_OR_RETURN(std::vector<uint8_t> data, reader.TakeBytes());
  size_t count = std::min(data.size(), buffer.size());
  std::memcpy(buffer.data(), data.data(), count);
  return count;
}

Result<SharedBytes> SandClient::ReadAllShared(int fd) {
  std::vector<uint8_t> request = RequestHead(Command::kReadAll);
  PutI32(request, fd);
  std::vector<uint8_t> response;
  SAND_RETURN_IF_ERROR(RoundTrip(request, response));
  WireReader reader(response);
  (void)reader.TakeU8();
  SAND_ASSIGN_OR_RETURN(std::vector<uint8_t> data, reader.TakeBytes());
  return std::make_shared<const std::vector<uint8_t>>(std::move(data));
}

Result<uint64_t> SandClient::SizeOf(int fd) {
  std::vector<uint8_t> request = RequestHead(Command::kSizeOf);
  PutI32(request, fd);
  std::vector<uint8_t> response;
  SAND_RETURN_IF_ERROR(RoundTrip(request, response));
  WireReader reader(response);
  (void)reader.TakeU8();
  SAND_ASSIGN_OR_RETURN(uint64_t size, reader.TakeU64());
  return size;
}

Result<std::string> SandClient::GetXattr(int fd, const std::string& name) {
  std::vector<uint8_t> request = RequestHead(Command::kGetXattr);
  PutI32(request, fd);
  PutString(request, name);
  std::vector<uint8_t> response;
  SAND_RETURN_IF_ERROR(RoundTrip(request, response));
  WireReader reader(response);
  (void)reader.TakeU8();
  SAND_ASSIGN_OR_RETURN(std::string value, reader.TakeString());
  return value;
}

Result<std::vector<std::string>> SandClient::ListDir(const std::string& path) {
  std::vector<uint8_t> request = RequestHead(Command::kListDir);
  PutString(request, path);
  std::vector<uint8_t> response;
  SAND_RETURN_IF_ERROR(RoundTrip(request, response));
  WireReader reader(response);
  (void)reader.TakeU8();
  SAND_ASSIGN_OR_RETURN(uint32_t count, reader.TakeU32());
  std::vector<std::string> entries;
  entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    SAND_ASSIGN_OR_RETURN(std::string entry, reader.TakeString());
    entries.push_back(std::move(entry));
  }
  return entries;
}

Status SandClient::Close(int fd) {
  std::vector<uint8_t> request = RequestHead(Command::kClose);
  PutI32(request, fd);
  std::vector<uint8_t> response;
  return RoundTrip(request, response);
}

}  // namespace net
}  // namespace sand
