#include "src/net/sand_client.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

namespace sand {
namespace net {

namespace {

std::vector<uint8_t> RequestHead(Command command) {
  return {static_cast<uint8_t>(command)};
}

}  // namespace

Result<std::unique_ptr<SandClient>> SandClient::Connect(const Options& options) {
  if (options.tenant.empty()) {
    return InvalidArgument("SandClient::Connect: tenant tag is required");
  }
  uint16_t offer = options.protocol_version;
  if (offer < kMinProtocolVersion || offer > kProtocolVersion) {
    return InvalidArgument("SandClient::Connect: unsupported protocol version " +
                           std::to_string(offer));
  }
  for (;;) {
    Result<int> socket_fd = options.unix_path.empty()
                                ? ConnectTcp(options.host, options.port)
                                : ConnectUnix(options.unix_path);
    if (!socket_fd.ok()) {
      return socket_fd.status();
    }

    // The HELLO exchange is always v1-shaped (no request id): it is the
    // message that carries the version, so it must parse before either
    // side knows what the other speaks.
    std::vector<uint8_t> hello = RequestHead(Command::kHello);
    PutU16(hello, offer);
    PutString(hello, options.tenant);
    std::vector<uint8_t> response;
    if (!WriteFrame(*socket_fd, hello) || !ReadFrame(*socket_fd, response)) {
      ::close(*socket_fd);
      return Unavailable("server connection lost during HELLO");
    }
    Status status = DecodeResponseStatus(response);
    if (!status.ok()) {
      ::close(*socket_fd);
      // A pre-pipelining server rejects version 2 outright; negotiate down
      // once and redial rather than surfacing its refusal. The refusal is
      // recognized structurally by the kVersionRefusedTag prefix tagged
      // servers put on the message; the "protocol version" substring match
      // stays only as a fallback for servers from before the tag existed,
      // whose message wording is frozen.
      bool version_refused =
          status.message().rfind(kVersionRefusedTag, 0) == 0 ||
          status.message().find("protocol version") != std::string::npos;
      if (status.code() == ErrorCode::kInvalidArgument &&
          offer > kMinProtocolVersion && version_refused) {
        offer = kMinProtocolVersion;
        continue;
      }
      return status;
    }
    WireReader reader(response);
    (void)reader.TakeU8();  // status head, already checked
    auto tenant_id = reader.TakeU32();
    if (!tenant_id.ok()) {
      ::close(*socket_fd);
      return tenant_id.status();
    }
    // Servers that negotiate append the agreed version; its absence means
    // a v1 server that simply accepted our v1 HELLO.
    uint16_t negotiated = kMinProtocolVersion;
    if (reader.remaining() >= 2) {
      negotiated = *reader.TakeU16();
    }
    if (negotiated > offer) {
      ::close(*socket_fd);
      return Internal("server negotiated protocol version " +
                      std::to_string(negotiated) + " above our offer " +
                      std::to_string(offer));
    }
    std::unique_ptr<SandClient> client(new SandClient(*socket_fd, negotiated));
    client->tenant_id_ = *tenant_id;
    client->max_inflight_ = options.max_inflight;
    client->StartReader();
    return client;
  }
}

SandClient::~SandClient() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    dead_ = true;
    if (socket_fd_ >= 0) {
      // Wake the reader with EOF; it fails every pending request with
      // UNAVAILABLE, so futures held by callers that outlive this client
      // resolve instead of hanging.
      ::shutdown(socket_fd_, SHUT_RDWR);
    }
  }
  if (reader_.joinable()) {
    reader_.join();
  }
  if (socket_fd_ >= 0) {
    ::close(socket_fd_);
  }
}

size_t SandClient::inflight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.size();
}

void SandClient::StartReader() {
  reader_ = std::thread([this] { ReaderLoop(); });
}

void SandClient::ReaderLoop() {
  Status failure = Unavailable("server connection lost");
  std::vector<uint8_t> frame;
  while (ReadFrame(socket_fd_, frame)) {
    Promise<std::vector<uint8_t>> promise;
    std::vector<uint8_t> payload;
    if (version_ >= 2) {
      WireReader reader(frame);
      auto id = reader.TakeU64();
      if (!id.ok()) {
        failure = Unavailable("malformed response frame: missing request id");
        break;
      }
      payload = reader.TakeRest();
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = pending_.find(*id);
      if (it == pending_.end()) {
        // A response we never asked for (or asked for twice): the stream
        // can no longer be trusted to pair responses with requests.
        failure = Unavailable("response for unknown request id " +
                              std::to_string(*id) + "; stream desynchronized");
        break;
      }
      promise = std::move(it->second);
      pending_.erase(it);
    } else {
      // v1 has no ids; a serial server answers strictly in request order,
      // so the oldest pending request owns this response.
      payload = std::move(frame);
      std::lock_guard<std::mutex> lock(mutex_);
      if (pending_.empty()) {
        failure = Unavailable("unsolicited response; stream desynchronized");
        break;
      }
      auto it = pending_.begin();
      promise = std::move(it->second);
      pending_.erase(it);
    }
    // Outside the lock: Set runs continuations inline.
    promise.Set(std::move(payload));
    frame.clear();
  }
  Poison(failure);
}

void SandClient::Poison(const Status& status) {
  std::map<uint64_t, Promise<std::vector<uint8_t>>> orphans;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    dead_ = true;
    orphans.swap(pending_);
    if (socket_fd_ >= 0) {
      ::shutdown(socket_fd_, SHUT_RDWR);
    }
  }
  for (auto& [id, promise] : orphans) {
    (void)id;
    promise.Set(Result<std::vector<uint8_t>>(status));
  }
}

Future<std::vector<uint8_t>> SandClient::Issue(std::vector<uint8_t> request) {
  Promise<std::vector<uint8_t>> promise;
  Future<std::vector<uint8_t>> future = promise.future();
  Status refusal = Status::Ok();
  bool poisoned = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (dead_ || socket_fd_ < 0) {
      refusal = Unavailable("connection closed");
    } else if (max_inflight_ > 0 &&
               pending_.size() >= static_cast<size_t>(max_inflight_)) {
      refusal = ResourceExhausted(
          "client inflight cap (" + std::to_string(max_inflight_) +
          ") reached, retry");
    } else {
      uint64_t id = next_request_id_++;
      std::vector<uint8_t> frame;
      if (version_ >= 2) {
        frame.reserve(request.size() + 8);
        PutU64(frame, id);
      }
      frame.insert(frame.end(), request.begin(), request.end());
      // Register before writing: the response cannot legally outrun an
      // entry the reader can match it to.
      pending_.emplace(id, std::move(promise));
      if (!WriteFrame(socket_fd_, frame)) {
        // A half-written request poisons the stream; the reader (woken by
        // the shutdown) fails the other pending requests.
        auto it = pending_.find(id);
        promise = std::move(it->second);
        pending_.erase(it);
        dead_ = true;
        ::shutdown(socket_fd_, SHUT_RDWR);
        refusal = Unavailable("server connection lost");
        poisoned = true;
      } else {
        return future;
      }
    }
  }
  (void)poisoned;
  promise.Set(Result<std::vector<uint8_t>>(refusal));
  return future;
}

Status SandClient::Call(std::vector<uint8_t> request, std::vector<uint8_t>& response) {
  Result<std::vector<uint8_t>> result = Issue(std::move(request)).Get();
  if (!result.ok()) {
    return result.status();
  }
  response = std::move(*result);
  return DecodeResponseStatus(response);
}

Result<int> SandClient::Open(const std::string& path, const OpenOptions& options) {
  SAND_RETURN_IF_ERROR(options.Validate());
  std::vector<uint8_t> request = RequestHead(Command::kOpen);
  PutString(request, path);
  PutBytes(request, options.Serialize());
  std::vector<uint8_t> response;
  SAND_RETURN_IF_ERROR(Call(std::move(request), response));
  WireReader reader(response);
  (void)reader.TakeU8();
  SAND_ASSIGN_OR_RETURN(int fd, reader.TakeI32());
  return fd;
}

Result<size_t> SandClient::Read(int fd, std::span<uint8_t> buffer) {
  std::vector<uint8_t> request = RequestHead(Command::kRead);
  PutI32(request, fd);
  PutU64(request, buffer.size());
  std::vector<uint8_t> response;
  SAND_RETURN_IF_ERROR(Call(std::move(request), response));
  WireReader reader(response);
  (void)reader.TakeU8();
  SAND_ASSIGN_OR_RETURN(std::vector<uint8_t> data, reader.TakeBytes());
  size_t count = std::min(data.size(), buffer.size());
  std::memcpy(buffer.data(), data.data(), count);
  return count;
}

Result<size_t> SandClient::PRead(int fd, std::span<uint8_t> buffer, uint64_t offset) {
  std::vector<uint8_t> request = RequestHead(Command::kPRead);
  PutI32(request, fd);
  PutU64(request, offset);
  PutU64(request, buffer.size());
  std::vector<uint8_t> response;
  SAND_RETURN_IF_ERROR(Call(std::move(request), response));
  WireReader reader(response);
  (void)reader.TakeU8();
  SAND_ASSIGN_OR_RETURN(std::vector<uint8_t> data, reader.TakeBytes());
  size_t count = std::min(data.size(), buffer.size());
  std::memcpy(buffer.data(), data.data(), count);
  return count;
}

Result<SharedBytes> SandClient::ReadAllShared(int fd) {
  return ReadAllSharedAsync(fd).Get();
}

Future<SharedBytes> SandClient::ReadAllSharedAsync(int fd) {
  std::vector<uint8_t> request = RequestHead(Command::kReadAll);
  PutI32(request, fd);
  Future<std::vector<uint8_t>> raw = Issue(std::move(request));
  // Map the raw payload onto SharedBytes on whichever thread resolves it
  // (the demux reader in steady state); the parse is one bounds check and
  // the single off-the-wire copy.
  auto promise = std::make_shared<Promise<SharedBytes>>();
  Future<SharedBytes> future = promise->future();
  raw.OnReady([promise](const Result<std::vector<uint8_t>>& result) {
    if (!result.ok()) {
      promise->Set(result.status());
      return;
    }
    Status head = DecodeResponseStatus(*result);
    if (!head.ok()) {
      promise->Set(head);
      return;
    }
    WireReader reader(*result);
    (void)reader.TakeU8();
    auto data = reader.TakeBytes();
    if (!data.ok()) {
      promise->Set(data.status());
      return;
    }
    promise->Set(std::make_shared<const std::vector<uint8_t>>(std::move(*data)));
  });
  return future;
}

Result<uint64_t> SandClient::SizeOf(int fd) {
  std::vector<uint8_t> request = RequestHead(Command::kSizeOf);
  PutI32(request, fd);
  std::vector<uint8_t> response;
  SAND_RETURN_IF_ERROR(Call(std::move(request), response));
  WireReader reader(response);
  (void)reader.TakeU8();
  SAND_ASSIGN_OR_RETURN(uint64_t size, reader.TakeU64());
  return size;
}

Result<std::string> SandClient::GetXattr(int fd, const std::string& name) {
  std::vector<uint8_t> request = RequestHead(Command::kGetXattr);
  PutI32(request, fd);
  PutString(request, name);
  std::vector<uint8_t> response;
  SAND_RETURN_IF_ERROR(Call(std::move(request), response));
  WireReader reader(response);
  (void)reader.TakeU8();
  SAND_ASSIGN_OR_RETURN(std::string value, reader.TakeString());
  return value;
}

Result<std::vector<std::string>> SandClient::ListDir(const std::string& path) {
  std::vector<uint8_t> request = RequestHead(Command::kListDir);
  PutString(request, path);
  std::vector<uint8_t> response;
  SAND_RETURN_IF_ERROR(Call(std::move(request), response));
  WireReader reader(response);
  (void)reader.TakeU8();
  SAND_ASSIGN_OR_RETURN(uint32_t count, reader.TakeU32());
  std::vector<std::string> entries;
  entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    SAND_ASSIGN_OR_RETURN(std::string entry, reader.TakeString());
    entries.push_back(std::move(entry));
  }
  return entries;
}

Status SandClient::Close(int fd) {
  std::vector<uint8_t> request = RequestHead(Command::kClose);
  PutI32(request, fd);
  std::vector<uint8_t> response;
  return Call(std::move(request), response);
}

Status SandClient::PutObject(const std::string& key, std::span<const uint8_t> data) {
  std::vector<uint8_t> request = RequestHead(Command::kPutObject);
  PutString(request, key);
  PutU32(request, static_cast<uint32_t>(data.size()));
  request.insert(request.end(), data.begin(), data.end());
  std::vector<uint8_t> response;
  return Call(std::move(request), response);
}

Result<SharedBytes> SandClient::GetObjectShared(const std::string& key) {
  std::vector<uint8_t> request = RequestHead(Command::kGetObject);
  PutString(request, key);
  std::vector<uint8_t> response;
  SAND_RETURN_IF_ERROR(Call(std::move(request), response));
  WireReader reader(response);
  (void)reader.TakeU8();
  SAND_ASSIGN_OR_RETURN(std::vector<uint8_t> data, reader.TakeBytes());
  return std::make_shared<const std::vector<uint8_t>>(std::move(data));
}

Result<SandClient::ObjectStat> SandClient::StatObject(const std::string& key) {
  std::vector<uint8_t> request = RequestHead(Command::kStatObject);
  PutString(request, key);
  std::vector<uint8_t> response;
  SAND_RETURN_IF_ERROR(Call(std::move(request), response));
  WireReader reader(response);
  (void)reader.TakeU8();
  SAND_ASSIGN_OR_RETURN(uint8_t exists, reader.TakeU8());
  SAND_ASSIGN_OR_RETURN(uint64_t size, reader.TakeU64());
  return ObjectStat{exists != 0, size};
}

Status SandClient::DeleteObject(const std::string& key) {
  std::vector<uint8_t> request = RequestHead(Command::kDeleteObject);
  PutString(request, key);
  std::vector<uint8_t> response;
  return Call(std::move(request), response);
}

}  // namespace net
}  // namespace sand
