#include "src/net/sand_server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/common/threading.h"
#include "src/common/trace_context.h"
#include "src/net/wire.h"
#include "src/obs/attribution.h"
#include "src/obs/metrics.h"
#include "src/storage/object_store.h"

namespace sand {
namespace net {

namespace {

bool IsControlPath(const std::string& path) {
  return path.rfind("/.sand", 0) == 0;
}

// First path component ("task" in /{task}/{epoch}/...): the unit tenant
// isolation keys on.
std::string TaskComponent(const std::string& path) {
  size_t start = path.find_first_not_of('/');
  if (start == std::string::npos) {
    return "";
  }
  size_t end = path.find('/', start);
  return path.substr(start, end == std::string::npos ? std::string::npos : end - start);
}

bool TenantMayAccess(const std::string& tag, const std::string& path) {
  if (IsControlPath(path) || path == "/" || path.empty()) {
    return true;
  }
  std::string task = TaskComponent(path);
  return task == tag || task.rfind(tag + "_", 0) == 0;
}

}  // namespace

SandServer::SandServer(SandApi* backend, Options options)
    : backend_(backend),
      options_(std::move(options)),
      request_pool_(WorkerPool::Options{
          std::max(1, options_.request_threads),
          std::max<size_t>(1, options_.request_queue_depth)}),
      idle_reaped_counter_(obs::Registry::Get().GetCounter("sand.net.idle_reaped")) {}

SandServer::~SandServer() { Stop(); }

Status SandServer::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_) {
    return FailedPrecondition("server already started");
  }
  if (options_.unix_path.empty() && options_.tcp_port < 0) {
    return InvalidArgument("no listen endpoint: set unix_path and/or tcp_port");
  }
  std::vector<int> fds;
  if (!options_.unix_path.empty()) {
    auto fd = ListenUnix(options_.unix_path, /*backlog=*/64);
    if (!fd.ok()) {
      return fd.status();
    }
    fds.push_back(*fd);
  }
  if (options_.tcp_port >= 0) {
    int bound = -1;
    auto fd = ListenTcp(options_.tcp_port, /*backlog=*/64, &bound);
    if (!fd.ok()) {
      for (int open_fd : fds) {
        ::close(open_fd);
      }
      return fd.status();
    }
    fds.push_back(*fd);
    bound_tcp_port_ = bound;
  }
  listen_fds_ = fds;
  running_ = true;
  for (int fd : listen_fds_) {
    accept_threads_.emplace_back([this, fd] { AcceptLoop(fd); });
  }
  if (options_.idle_timeout_ms > 0) {
    reaper_thread_ = std::thread([this] { ReaperLoop(); });
  }
  return Status::Ok();
}

void SandServer::Stop() {
  std::vector<std::thread> accept_threads;
  std::thread reaper_thread;
  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) {
      return;
    }
    running_ = false;
    for (int fd : listen_fds_) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    }
    listen_fds_.clear();
    accept_threads.swap(accept_threads_);
    reaper_thread.swap(reaper_thread_);
    // Sever live connections under the lock: ServeConnection closes (and
    // -1s) socket_fd under this same mutex, so a still-open fd here cannot
    // be a recycled descriptor number belonging to someone else.
    for (auto& conn : connections_) {
      if (conn->socket_fd >= 0) {
        ::shutdown(conn->socket_fd, SHUT_RDWR);
      }
    }
    connections.swap(connections_);
  }
  reaper_cv_.notify_all();
  if (reaper_thread.joinable()) {
    reaper_thread.join();
  }
  for (std::thread& thread : accept_threads) {
    if (thread.joinable()) {
      thread.join();
    }
  }
  for (auto& conn : connections) {
    if (conn->thread.joinable()) {
      conn->thread.join();
    }
  }
  if (!options_.unix_path.empty()) {
    ::unlink(options_.unix_path.c_str());
  }
}

void SandServer::RegisterTenant(const std::string& tag, const TenantQuotas& quotas) {
  uint32_t id = obs::TenantRegistry::Get().Intern(tag);
  std::lock_guard<std::mutex> lock(tenants_mutex_);
  auto& state = tenants_[id];
  if (state == nullptr) {
    state = std::make_unique<TenantState>();
  }
  state->quotas = quotas;
  if (options_.sched_cap_hook) {
    options_.sched_cap_hook(id, quotas.sched_max_running);
  }
}

SandServer::TenantState* SandServer::TenantFor(uint32_t tenant_id) {
  std::lock_guard<std::mutex> lock(tenants_mutex_);
  auto it = tenants_.find(tenant_id);
  return it == tenants_.end() ? nullptr : it->second.get();
}

void SandServer::AcceptLoop(int listen_fd) {
  while (true) {
    int socket_fd = ::accept(listen_fd, nullptr, nullptr);
    if (socket_fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // listener shut down
    }
    // Small-frame RPCs must not stall behind Nagle; dead trainers must not
    // pin sessions (and their budget charges) forever.
    TuneStreamSocket(socket_fd, /*keepalive=*/true);
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) {
      ::close(socket_fd);
      return;
    }
    // Reap finished connections so a long-lived server is bounded by its
    // *live* session count, not every session it ever accepted. A done
    // connection set its flag as its final act, so the join is immediate.
    for (auto it = connections_.begin(); it != connections_.end();) {
      if ((*it)->done.load()) {
        if ((*it)->thread.joinable()) {
          (*it)->thread.join();
        }
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
    auto conn = std::make_unique<Connection>();
    conn->socket_fd = socket_fd;
    conn->last_active_ns.store(static_cast<int64_t>(SinceProcessStart()));
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++stats_.connections_accepted;
      ++stats_.active_connections;
    }
    conn->thread = std::thread([this, raw] { ServeConnection(raw); });
    connections_.push_back(std::move(conn));
  }
}

void SandServer::ReaperLoop() {
  const int64_t timeout_ns = static_cast<int64_t>(options_.idle_timeout_ms) * 1000000;
  const auto poll_every =
      std::chrono::milliseconds(std::max(1, options_.idle_timeout_ms / 4));
  std::unique_lock<std::mutex> lock(mutex_);
  while (running_) {
    reaper_cv_.wait_for(lock, poll_every);
    if (!running_) {
      return;
    }
    int64_t now = static_cast<int64_t>(SinceProcessStart());
    for (auto& conn : connections_) {
      if (conn->done.load() || conn->reaped.load() || conn->socket_fd < 0) {
        continue;
      }
      bool reap = false;
      {
        // A connection waiting on a slow materialize is busy, not idle.
        // The activity stamp is re-checked and the shutdown issued under
        // the same inflight_mutex the reader stamps at admission, so a
        // frame admitted after the inflight check cannot land on a socket
        // this pass decided to reap: either its stamp is visible here (we
        // skip), or it is still before the stamp in the reader — in which
        // case the reader sees the shutdown as EOF and tears down cleanly
        // without ever dispatching onto a dead socket.
        std::lock_guard<std::mutex> inflight_lock(conn->inflight_mutex);
        if (conn->inflight == 0 &&
            now - conn->last_active_ns.load() >= timeout_ns) {
          // Shutdown (not close) wakes the reader thread out of ReadFrame;
          // the normal teardown path then releases the session's fds and
          // budget charges.
          conn->reaped.store(true);
          ::shutdown(conn->socket_fd, SHUT_RDWR);
          reap = true;
        }
      }
      if (!reap) {
        continue;
      }
      idle_reaped_counter_->Add(1);
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++stats_.idle_reaped;
    }
  }
}

void SandServer::ServeConnection(Connection* conn) {
  std::vector<uint8_t> request;
  while (ReadFrame(conn->socket_fd, request)) {
    {
      // Stamp under inflight_mutex: the idle reaper re-checks this stamp
      // under the same lock before shutting the socket down, closing the
      // window where a frame admitted after its inflight check would be
      // dispatched onto a reaped socket.
      std::lock_guard<std::mutex> lock(conn->inflight_mutex);
      conn->last_active_ns.store(static_cast<int64_t>(SinceProcessStart()));
    }
    WireReader reader(request);
    // Request ids exist only after a v2 HELLO; the HELLO frame itself is
    // always v1-shaped so the version parses before negotiation.
    const bool has_id = conn->tenant_id != 0 && conn->protocol_version >= 2;
    uint64_t request_id = 0;
    if (has_id) {
      auto id = reader.TakeU64();
      if (!id.ok()) {
        break;  // truncated frame: protocol violation, drop the connection
      }
      request_id = *id;
    }
    auto command_byte = reader.TakeU8();
    if (!command_byte.ok()) {
      break;  // empty frame: protocol violation, drop the connection
    }
    Command command = static_cast<Command>(*command_byte);

    if (command == Command::kHello) {
      if (!WriteResponse(conn, has_id, request_id,
                         WireResponse{HandleHello(conn, reader), nullptr})) {
        break;
      }
      continue;
    }
    if (conn->tenant_id == 0) {
      if (!WriteResponse(conn, has_id, request_id,
                         WireResponse{EncodeErrorResponse(FailedPrecondition(
                                          "HELLO with a tenant tag must precede "
                                          "other commands")),
                                      nullptr})) {
        break;
      }
      continue;
    }
    if (command == Command::kClose) {
      // Close runs inline and is never refused: cleanup must always be
      // possible, or backpressure would turn into an fd leak.
      if (!WriteResponse(conn, has_id, request_id,
                         WireResponse{HandleClose(conn, reader), nullptr})) {
        break;
      }
      continue;
    }

    // Data verb: admission-check on the reader thread, execute on the pool.
    TenantState* tenant = TenantFor(conn->tenant_id);
    obs::TenantMetrics* metrics = obs::TenantMetricsFor(conn->tenant_id);
    bool admitted = true;
    if (tenant != nullptr && tenant->quotas.max_inflight > 0) {
      // Each pipelined request takes a quota slot up front, so a deep
      // client window cannot out-run the tenant's inflight cap.
      if (tenant->inflight.fetch_add(1) >= tenant->quotas.max_inflight) {
        tenant->inflight.fetch_sub(1);
        admitted = false;
      }
    } else if (tenant != nullptr) {
      tenant->inflight.fetch_add(1);
    }
    if (!admitted) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.rejected_quota;
      }
      if (metrics != nullptr) {
        metrics->rejected->Add(1);
      }
      if (!WriteResponse(conn, has_id, request_id,
                         WireResponse{EncodeErrorResponse(ResourceExhausted(
                                          "tenant '" + conn->tenant_tag +
                                          "' inflight quota exceeded")),
                                      nullptr})) {
        break;
      }
      continue;
    }

    if (metrics != nullptr) {
      metrics->inflight->Add(1);
    }
    TraceContext ctx = BeginRequestContext(/*job_id=*/0, RequestClass::kDemand);
    ctx.tenant_id = conn->tenant_id;
    Nanos start = SinceProcessStart();
    {
      std::lock_guard<std::mutex> lock(conn->inflight_mutex);
      ++conn->inflight;
    }
    // The task owns its request bytes; the reader's `request` is free for
    // the next frame immediately. `cursor` re-synchronizes a fresh reader
    // past the id and command this thread already consumed.
    size_t cursor = reader.position();
    bool submitted = request_pool_.TrySubmit(
        [this, conn, tenant, metrics, command, has_id, request_id, ctx, start,
         cursor, body = request]() mutable {
          ScopedTraceContext scope(ctx);
          WireReader task_reader(body);
          (void)task_reader.Skip(cursor);
          WireResponse response = Dispatch(conn, command, task_reader);
          // Release the tenant quota slot before the response hits the wire:
          // a client that observes completion and immediately issues the next
          // request must find the slot free, not race our bookkeeping.
          if (tenant != nullptr) {
            tenant->inflight.fetch_sub(1);
          }
          bool wrote = WriteResponse(conn, has_id, request_id, response);
          {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.requests_served;
          }
          if (metrics != nullptr) {
            metrics->requests->Add(1);
            metrics->materialize_wait_ns->Record(
                static_cast<uint64_t>(SinceProcessStart() - start));
            if (!response.head.empty() && response.head[0] == 0) {
              // Only data-bearing reads count as tenant read traffic:
              // charging every ok response (Open, ListDir, GetXattr...)
              // inflated the tenant table and the fair-share bench.
              uint64_t bytes = 0;
              switch (command) {
                case Command::kRead:
                case Command::kPRead:
                  // head = status byte | u32 length | payload
                  bytes = response.head.size() > 5 ? response.head.size() - 5 : 0;
                  break;
                case Command::kReadAll:
                case Command::kGetObject:
                  // Bulk payload rides the scatter-gather body.
                  bytes = response.body != nullptr ? response.body->size() : 0;
                  break;
                default:
                  break;
              }
              if (bytes > 0) {
                metrics->bytes_read->Add(static_cast<int64_t>(bytes));
              }
            }
            metrics->inflight->Add(-1);
          }
          if (!wrote) {
            // Client is gone: wake the reader out of ReadFrame so the
            // session tears down instead of idling on a dead socket.
            ::shutdown(conn->socket_fd, SHUT_RDWR);
          }
          std::lock_guard<std::mutex> lock(conn->inflight_mutex);
          --conn->inflight;
          conn->inflight_cv.notify_all();
        });
    if (!submitted) {
      {
        std::lock_guard<std::mutex> lock(conn->inflight_mutex);
        --conn->inflight;
      }
      if (metrics != nullptr) {
        metrics->inflight->Add(-1);
      }
      if (tenant != nullptr) {
        tenant->inflight.fetch_sub(1);
      }
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.rejected_backpressure;
      }
      if (metrics != nullptr) {
        metrics->rejected->Add(1);
      }
      if (!WriteResponse(conn, has_id, request_id,
                         WireResponse{EncodeErrorResponse(ResourceExhausted(
                                          "server saturated: request queue is "
                                          "full, retry")),
                                      nullptr})) {
        break;
      }
      continue;
    }
    if (conn->protocol_version < 2) {
      // v1 contract: strictly serial, responses in request order. Waiting
      // here also makes the client-side FIFO demux sound.
      std::unique_lock<std::mutex> lock(conn->inflight_mutex);
      conn->inflight_cv.wait(lock, [conn] { return conn->inflight == 0; });
    }
  }

  // Drain: pipelined dispatches still hold this connection's state (and
  // its socket, for their response writes); teardown must not race them.
  {
    std::unique_lock<std::mutex> lock(conn->inflight_mutex);
    conn->inflight_cv.wait(lock, [conn] { return conn->inflight == 0; });
  }

  // Session teardown: everything the connection still holds open is
  // closed, releasing pins and budget charges. A client that vanished
  // mid-materialize leaks nothing.
  {
    std::lock_guard<std::mutex> fd_lock(conn->fd_mutex);
    for (const auto& [fd, charged] : conn->owned_fds) {
      backend_->Close(fd);
      if (charged > 0) {
        if (TenantState* tenant = TenantFor(conn->tenant_id)) {
          tenant->resident_bytes.fetch_sub(charged);
        }
        if (obs::TenantMetrics* metrics = obs::TenantMetricsFor(conn->tenant_id)) {
          metrics->resident_bytes->Add(-static_cast<int64_t>(charged));
        }
      }
    }
    conn->owned_fds.clear();
  }
  {
    // Close under mutex_ and mark the fd gone so Stop never shutdowns a
    // descriptor number the kernel has already handed to someone else.
    std::lock_guard<std::mutex> lock(mutex_);
    ::close(conn->socket_fd);
    conn->socket_fd = -1;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    --stats_.active_connections;
  }
  // Last act: after this the accept loop may join and free us.
  conn->done.store(true);
}

bool SandServer::WriteResponse(Connection* conn, bool has_id, uint64_t request_id,
                               const WireResponse& response) {
  std::vector<uint8_t> head;
  head.reserve((has_id ? 8 : 0) + response.head.size());
  if (has_id) {
    PutU64(head, request_id);
  }
  head.insert(head.end(), response.head.begin(), response.head.end());
  const uint8_t* body = nullptr;
  size_t body_size = 0;
  if (response.body != nullptr) {
    body = response.body->data();
    body_size = response.body->size();
  }
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  return WriteFrameScatter(conn->socket_fd, head, body, body_size);
}

std::vector<uint8_t> SandServer::HandleHello(Connection* conn, WireReader& reader) {
  if (conn->tenant_id != 0) {
    // Re-authenticating as another tenant would strand this connection's
    // fd charges on the old tenant's budget; a session is one tenant for
    // life — reconnect to switch.
    return EncodeErrorResponse(
        FailedPrecondition("connection already authenticated as tenant '" +
                           conn->tenant_tag + "'"));
  }
  auto version = reader.TakeU16();
  if (!version.ok()) {
    return EncodeErrorResponse(version.status());
  }
  if (*version < kMinProtocolVersion) {
    // The tag prefix is the machine-readable part: clients deciding
    // whether to re-dial at another version match it structurally, so the
    // human-readable text after it can be reworded freely.
    return EncodeErrorResponse(InvalidArgument(
        std::string(kVersionRefusedTag) +
        "protocol version mismatch: server speaks " +
        std::to_string(kMinProtocolVersion) + ".." +
        std::to_string(kProtocolVersion) + ", client sent " +
        std::to_string(*version)));
  }
  uint16_t negotiated = std::min<uint16_t>(*version, kProtocolVersion);
  auto tag = reader.TakeString();
  if (!tag.ok()) {
    return EncodeErrorResponse(tag.status());
  }
  if (tag->empty()) {
    return EncodeErrorResponse(InvalidArgument("empty tenant tag"));
  }
  if (!options_.allowed_uids.empty()) {
    // Fails closed: no credential (e.g. a TCP peer) refuses like a wrong
    // uid would — the allowlist is only satisfiable over a unix socket.
    auto uid = PeerUid(conn->socket_fd);
    if (!uid.ok()) {
      return EncodeErrorResponse(uid.status());
    }
    if (std::find(options_.allowed_uids.begin(), options_.allowed_uids.end(),
                  *uid) == options_.allowed_uids.end()) {
      return EncodeErrorResponse(FailedPrecondition(
          "peer uid " + std::to_string(*uid) + " not in server allowlist"));
    }
  }
  uint32_t id = obs::TenantRegistry::Get().Intern(*tag);
  {
    std::lock_guard<std::mutex> lock(tenants_mutex_);
    auto it = tenants_.find(id);
    if (it == tenants_.end()) {
      if (!options_.auto_register_tenants) {
        return EncodeErrorResponse(FailedPrecondition("unknown tenant: " + *tag));
      }
      auto state = std::make_unique<TenantState>();
      state->quotas = options_.default_quotas;
      if (options_.sched_cap_hook) {
        options_.sched_cap_hook(id, state->quotas.sched_max_running);
      }
      tenants_.emplace(id, std::move(state));
    }
  }
  conn->tenant_id = id;
  conn->tenant_tag = *tag;
  conn->protocol_version = negotiated;
  if (obs::TenantMetrics* metrics = obs::TenantMetricsFor(id)) {
    metrics->sessions->Add(1);
  }
  std::vector<uint8_t> response = EncodeOkHead();
  PutU32(response, id);
  // Appended after the v1 payload: old clients stop reading before it.
  PutU16(response, negotiated);
  return response;
}

std::vector<uint8_t> SandServer::HandleOpen(Connection* conn, WireReader& reader) {
  auto path = reader.TakeString();
  if (!path.ok()) {
    return EncodeErrorResponse(path.status());
  }
  auto options_bytes = reader.TakeBytes();
  if (!options_bytes.ok()) {
    return EncodeErrorResponse(options_bytes.status());
  }
  OpenOptions open_options;
  if (!options_bytes->empty()) {
    auto decoded = OpenOptions::Deserialize(*options_bytes);
    if (!decoded.ok()) {
      return EncodeErrorResponse(decoded.status());
    }
    open_options = *decoded;
  }
  if (options_.isolate_tenant_tasks && !TenantMayAccess(conn->tenant_tag, *path)) {
    return EncodeErrorResponse(FailedPrecondition(
        "tenant '" + conn->tenant_tag + "' may not access task '" +
        TaskComponent(*path) + "'"));
  }
  // Storage budget: admission happens at Open. Reads on fds the tenant
  // already holds keep serving even over budget — refusing those would
  // wedge a training loop mid-batch instead of pacing it.
  if (TenantState* tenant = TenantFor(conn->tenant_id)) {
    uint64_t budget = tenant->quotas.storage_budget_bytes;
    if (budget > 0 && !IsControlPath(*path) &&
        tenant->resident_bytes.load() >= budget) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.rejected_quota;
      }
      if (obs::TenantMetrics* metrics = obs::TenantMetricsFor(conn->tenant_id)) {
        metrics->rejected->Add(1);
      }
      return EncodeErrorResponse(ResourceExhausted(
          "tenant '" + conn->tenant_tag + "' storage budget exceeded (" +
          std::to_string(tenant->resident_bytes.load()) + " of " +
          std::to_string(budget) + " bytes open)"));
    }
  }
  auto fd = backend_->Open(*path, open_options);
  if (!fd.ok()) {
    return EncodeErrorResponse(fd.status());
  }
  {
    std::lock_guard<std::mutex> fd_lock(conn->fd_mutex);
    conn->owned_fds.emplace(*fd, 0);
  }
  std::vector<uint8_t> response = EncodeOkHead();
  PutI32(response, *fd);
  return response;
}

std::vector<uint8_t> SandServer::HandleClose(Connection* conn, WireReader& reader) {
  auto fd = reader.TakeI32();
  if (!fd.ok()) {
    return EncodeErrorResponse(fd.status());
  }
  if (!FdOwned(conn, *fd)) {
    return EncodeErrorResponse(InvalidArgument("fd not owned by this connection"));
  }
  ReleaseFd(conn, *fd);
  Status status = backend_->Close(*fd);
  if (!status.ok()) {
    return EncodeErrorResponse(status);
  }
  return EncodeOkHead();
}

void SandServer::ChargeFd(Connection* conn, int fd, uint64_t bytes) {
  // Tenant/metric updates stay under fd_mutex so a concurrent ReleaseFd
  // (pipelined read racing an inline Close) cannot release a charge this
  // thread has recorded but not yet applied.
  std::lock_guard<std::mutex> fd_lock(conn->fd_mutex);
  auto it = conn->owned_fds.find(fd);
  if (it == conn->owned_fds.end() || it->second != 0 || bytes == 0) {
    return;
  }
  it->second = bytes;
  if (TenantState* tenant = TenantFor(conn->tenant_id)) {
    tenant->resident_bytes.fetch_add(bytes);
  }
  if (obs::TenantMetrics* metrics = obs::TenantMetricsFor(conn->tenant_id)) {
    metrics->resident_bytes->Add(static_cast<int64_t>(bytes));
  }
}

void SandServer::ReleaseFd(Connection* conn, int fd) {
  std::lock_guard<std::mutex> fd_lock(conn->fd_mutex);
  auto it = conn->owned_fds.find(fd);
  if (it == conn->owned_fds.end()) {
    return;
  }
  uint64_t charged = it->second;
  conn->owned_fds.erase(it);
  if (charged == 0) {
    return;
  }
  if (TenantState* tenant = TenantFor(conn->tenant_id)) {
    tenant->resident_bytes.fetch_sub(charged);
  }
  if (obs::TenantMetrics* metrics = obs::TenantMetricsFor(conn->tenant_id)) {
    metrics->resident_bytes->Add(-static_cast<int64_t>(charged));
  }
}

SandServer::WireResponse SandServer::Dispatch(Connection* conn, Command command,
                                              WireReader& reader) {
  switch (command) {
    case Command::kOpen:
      return {HandleOpen(conn, reader), nullptr};

    case Command::kRead:
    case Command::kPRead: {
      auto fd = reader.TakeI32();
      if (!fd.ok()) {
        return {EncodeErrorResponse(fd.status()), nullptr};
      }
      uint64_t offset = 0;
      if (command == Command::kPRead) {
        auto off = reader.TakeU64();
        if (!off.ok()) {
          return {EncodeErrorResponse(off.status()), nullptr};
        }
        offset = *off;
      }
      auto max_bytes = reader.TakeU64();
      if (!max_bytes.ok()) {
        return {EncodeErrorResponse(max_bytes.status()), nullptr};
      }
      if (!FdOwned(conn, *fd)) {
        return {EncodeErrorResponse(InvalidArgument("fd not owned by this connection")),
                nullptr};
      }
      // The client's max_bytes is untrusted: clamp the buffer to what the
      // object can actually yield before allocating, falling back to half
      // a frame only when the backend cannot size the fd.
      uint64_t count = std::min<uint64_t>(*max_bytes, kMaxFrameBytes / 2);
      if (auto size = backend_->SizeOf(*fd); size.ok()) {
        ChargeFd(conn, *fd, *size);
        uint64_t available = command == Command::kPRead
                                 ? (offset < *size ? *size - offset : 0)
                                 : *size;
        count = std::min(count, available);
      }
      std::vector<uint8_t> buffer(static_cast<size_t>(count));
      Result<size_t> read =
          command == Command::kRead
              ? backend_->Read(*fd, std::span<uint8_t>(buffer))
              : backend_->PRead(*fd, std::span<uint8_t>(buffer), offset);
      if (!read.ok()) {
        return {EncodeErrorResponse(read.status()), nullptr};
      }
      buffer.resize(*read);
      std::vector<uint8_t> response = EncodeOkHead();
      PutBytes(response, buffer);
      return {std::move(response), nullptr};
    }

    case Command::kReadAll: {
      auto fd = reader.TakeI32();
      if (!fd.ok()) {
        return {EncodeErrorResponse(fd.status()), nullptr};
      }
      if (!FdOwned(conn, *fd)) {
        return {EncodeErrorResponse(InvalidArgument("fd not owned by this connection")),
                nullptr};
      }
      auto bytes = backend_->ReadAllShared(*fd);
      if (!bytes.ok()) {
        return {EncodeErrorResponse(bytes.status()), nullptr};
      }
      ChargeFd(conn, *fd, (*bytes)->size());
      if ((*bytes)->size() > kMaxFrameBytes - 16) {
        // Too big for one response frame: answer with an error the client
        // can act on (chunk via PRead) instead of dying on the write.
        return {EncodeErrorResponse(OutOfRange(
                    "object is " + std::to_string((*bytes)->size()) +
                    " bytes, larger than the " + std::to_string(kMaxFrameBytes) +
                    "-byte frame cap; read it in chunks with PRead")),
                nullptr};
      }
      // The payload ships as the scatter-gather tail of the frame, straight
      // from the cache's buffer: the head carries only status + length.
      std::vector<uint8_t> head = EncodeOkHead();
      PutU32(head, static_cast<uint32_t>((*bytes)->size()));
      return {std::move(head), *bytes};
    }

    case Command::kSizeOf: {
      auto fd = reader.TakeI32();
      if (!fd.ok()) {
        return {EncodeErrorResponse(fd.status()), nullptr};
      }
      if (!FdOwned(conn, *fd)) {
        return {EncodeErrorResponse(InvalidArgument("fd not owned by this connection")),
                nullptr};
      }
      auto size = backend_->SizeOf(*fd);
      if (!size.ok()) {
        return {EncodeErrorResponse(size.status()), nullptr};
      }
      ChargeFd(conn, *fd, *size);
      std::vector<uint8_t> response = EncodeOkHead();
      PutU64(response, *size);
      return {std::move(response), nullptr};
    }

    case Command::kGetXattr: {
      auto fd = reader.TakeI32();
      if (!fd.ok()) {
        return {EncodeErrorResponse(fd.status()), nullptr};
      }
      auto name = reader.TakeString();
      if (!name.ok()) {
        return {EncodeErrorResponse(name.status()), nullptr};
      }
      if (!FdOwned(conn, *fd)) {
        return {EncodeErrorResponse(InvalidArgument("fd not owned by this connection")),
                nullptr};
      }
      auto value = backend_->GetXattr(*fd, *name);
      if (!value.ok()) {
        return {EncodeErrorResponse(value.status()), nullptr};
      }
      std::vector<uint8_t> response = EncodeOkHead();
      PutString(response, *value);
      return {std::move(response), nullptr};
    }

    case Command::kListDir: {
      auto path = reader.TakeString();
      if (!path.ok()) {
        return {EncodeErrorResponse(path.status()), nullptr};
      }
      // Same isolation gate as Open: entry names are data too.
      if (options_.isolate_tenant_tasks && !TenantMayAccess(conn->tenant_tag, *path)) {
        return {EncodeErrorResponse(FailedPrecondition(
                    "tenant '" + conn->tenant_tag + "' may not list task '" +
                    TaskComponent(*path) + "'")),
                nullptr};
      }
      auto entries = backend_->ListDir(*path);
      if (!entries.ok()) {
        return {EncodeErrorResponse(entries.status()), nullptr};
      }
      // The root listing enumerates task names; under isolation a tenant
      // only sees its own (plus the shared control tree).
      if (options_.isolate_tenant_tasks && TaskComponent(*path).empty()) {
        entries->erase(
            std::remove_if(entries->begin(), entries->end(),
                           [conn](const std::string& entry) {
                             return !TenantMayAccess(conn->tenant_tag, "/" + entry);
                           }),
            entries->end());
      }
      std::vector<uint8_t> response = EncodeOkHead();
      PutU32(response, static_cast<uint32_t>(entries->size()));
      for (const std::string& entry : *entries) {
        PutString(response, entry);
      }
      return {std::move(response), nullptr};
    }

    case Command::kPutObject: {
      auto key = reader.TakeString();
      if (!key.ok()) {
        return {EncodeErrorResponse(key.status()), nullptr};
      }
      auto data = reader.TakeBytes();
      if (!data.ok()) {
        return {EncodeErrorResponse(data.status()), nullptr};
      }
      if (options_.object_store == nullptr) {
        return {EncodeErrorResponse(
                    FailedPrecondition("server has no object-store backend")),
                nullptr};
      }
      Status status = options_.object_store->PutShared(
          *key, MakeSharedBytes(std::move(*data)));
      if (!status.ok()) {
        return {EncodeErrorResponse(status), nullptr};
      }
      return {EncodeOkHead(), nullptr};
    }

    case Command::kGetObject: {
      auto key = reader.TakeString();
      if (!key.ok()) {
        return {EncodeErrorResponse(key.status()), nullptr};
      }
      if (options_.object_store == nullptr) {
        return {EncodeErrorResponse(
                    FailedPrecondition("server has no object-store backend")),
                nullptr};
      }
      auto bytes = options_.object_store->GetShared(*key);
      if (!bytes.ok()) {
        return {EncodeErrorResponse(bytes.status()), nullptr};
      }
      if ((*bytes)->size() > kMaxFrameBytes - 16) {
        return {EncodeErrorResponse(OutOfRange(
                    "object is " + std::to_string((*bytes)->size()) +
                    " bytes, larger than the " + std::to_string(kMaxFrameBytes) +
                    "-byte frame cap")),
                nullptr};
      }
      // Same shape as ReadAll: the payload rides the scatter-gather tail
      // straight from the store's SharedBytes allocation.
      std::vector<uint8_t> head = EncodeOkHead();
      PutU32(head, static_cast<uint32_t>((*bytes)->size()));
      return {std::move(head), *bytes};
    }

    case Command::kStatObject: {
      auto key = reader.TakeString();
      if (!key.ok()) {
        return {EncodeErrorResponse(key.status()), nullptr};
      }
      if (options_.object_store == nullptr) {
        return {EncodeErrorResponse(
                    FailedPrecondition("server has no object-store backend")),
                nullptr};
      }
      // One verb answers both Contains and SizeOf: absence is data, not an
      // error, so a cluster probe costs a single round trip either way.
      auto size = options_.object_store->SizeOf(*key);
      std::vector<uint8_t> response = EncodeOkHead();
      PutU8(response, size.ok() ? 1 : 0);
      PutU64(response, size.ok() ? *size : 0);
      return {std::move(response), nullptr};
    }

    case Command::kDeleteObject: {
      auto key = reader.TakeString();
      if (!key.ok()) {
        return {EncodeErrorResponse(key.status()), nullptr};
      }
      if (options_.object_store == nullptr) {
        return {EncodeErrorResponse(
                    FailedPrecondition("server has no object-store backend")),
                nullptr};
      }
      Status status = options_.object_store->Delete(*key);
      if (!status.ok()) {
        return {EncodeErrorResponse(status), nullptr};
      }
      return {EncodeOkHead(), nullptr};
    }

    case Command::kHello:
    case Command::kClose:
      break;  // handled inline by ServeConnection
  }
  return {EncodeErrorResponse(InvalidArgument(
              "unknown command " + std::to_string(static_cast<int>(command)))),
          nullptr};
}

ServerStats SandServer::stats() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace net
}  // namespace sand
