#include "src/net/sand_server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <future>
#include <utility>

#include "src/common/threading.h"
#include "src/common/trace_context.h"
#include "src/net/wire.h"
#include "src/obs/attribution.h"
#include "src/obs/metrics.h"

namespace sand {
namespace net {

namespace {

bool IsControlPath(const std::string& path) {
  return path.rfind("/.sand", 0) == 0;
}

// First path component ("task" in /{task}/{epoch}/...): the unit tenant
// isolation keys on.
std::string TaskComponent(const std::string& path) {
  size_t start = path.find_first_not_of('/');
  if (start == std::string::npos) {
    return "";
  }
  size_t end = path.find('/', start);
  return path.substr(start, end == std::string::npos ? std::string::npos : end - start);
}

bool TenantMayAccess(const std::string& tag, const std::string& path) {
  if (IsControlPath(path) || path == "/" || path.empty()) {
    return true;
  }
  std::string task = TaskComponent(path);
  return task == tag || task.rfind(tag + "_", 0) == 0;
}

}  // namespace

SandServer::SandServer(SandApi* backend, Options options)
    : backend_(backend),
      options_(std::move(options)),
      request_pool_(WorkerPool::Options{
          std::max(1, options_.request_threads),
          std::max<size_t>(1, options_.request_queue_depth)}) {}

SandServer::~SandServer() { Stop(); }

Status SandServer::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_) {
    return FailedPrecondition("server already started");
  }
  if (options_.unix_path.empty() && options_.tcp_port < 0) {
    return InvalidArgument("no listen endpoint: set unix_path and/or tcp_port");
  }
  std::vector<int> fds;
  if (!options_.unix_path.empty()) {
    auto fd = ListenUnix(options_.unix_path, /*backlog=*/64);
    if (!fd.ok()) {
      return fd.status();
    }
    fds.push_back(*fd);
  }
  if (options_.tcp_port >= 0) {
    int bound = -1;
    auto fd = ListenTcp(options_.tcp_port, /*backlog=*/64, &bound);
    if (!fd.ok()) {
      for (int open_fd : fds) {
        ::close(open_fd);
      }
      return fd.status();
    }
    fds.push_back(*fd);
    bound_tcp_port_ = bound;
  }
  listen_fds_ = fds;
  running_ = true;
  for (int fd : listen_fds_) {
    accept_threads_.emplace_back([this, fd] { AcceptLoop(fd); });
  }
  return Status::Ok();
}

void SandServer::Stop() {
  std::vector<std::thread> accept_threads;
  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) {
      return;
    }
    running_ = false;
    for (int fd : listen_fds_) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    }
    listen_fds_.clear();
    accept_threads.swap(accept_threads_);
    // Sever live connections under the lock: ServeConnection closes (and
    // -1s) socket_fd under this same mutex, so a still-open fd here cannot
    // be a recycled descriptor number belonging to someone else.
    for (auto& conn : connections_) {
      if (conn->socket_fd >= 0) {
        ::shutdown(conn->socket_fd, SHUT_RDWR);
      }
    }
    connections.swap(connections_);
  }
  for (std::thread& thread : accept_threads) {
    if (thread.joinable()) {
      thread.join();
    }
  }
  for (auto& conn : connections) {
    if (conn->thread.joinable()) {
      conn->thread.join();
    }
  }
  if (!options_.unix_path.empty()) {
    ::unlink(options_.unix_path.c_str());
  }
}

void SandServer::RegisterTenant(const std::string& tag, const TenantQuotas& quotas) {
  uint32_t id = obs::TenantRegistry::Get().Intern(tag);
  std::lock_guard<std::mutex> lock(tenants_mutex_);
  auto& state = tenants_[id];
  if (state == nullptr) {
    state = std::make_unique<TenantState>();
  }
  state->quotas = quotas;
  if (options_.sched_cap_hook) {
    options_.sched_cap_hook(id, quotas.sched_max_running);
  }
}

SandServer::TenantState* SandServer::TenantFor(uint32_t tenant_id) {
  std::lock_guard<std::mutex> lock(tenants_mutex_);
  auto it = tenants_.find(tenant_id);
  return it == tenants_.end() ? nullptr : it->second.get();
}

void SandServer::AcceptLoop(int listen_fd) {
  while (true) {
    int socket_fd = ::accept(listen_fd, nullptr, nullptr);
    if (socket_fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // listener shut down
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) {
      ::close(socket_fd);
      return;
    }
    // Reap finished connections so a long-lived server is bounded by its
    // *live* session count, not every session it ever accepted. A done
    // connection set its flag as its final act, so the join is immediate.
    for (auto it = connections_.begin(); it != connections_.end();) {
      if ((*it)->done.load()) {
        if ((*it)->thread.joinable()) {
          (*it)->thread.join();
        }
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
    auto conn = std::make_unique<Connection>();
    conn->socket_fd = socket_fd;
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++stats_.connections_accepted;
      ++stats_.active_connections;
    }
    conn->thread = std::thread([this, raw] { ServeConnection(raw); });
    connections_.push_back(std::move(conn));
  }
}

void SandServer::ServeConnection(Connection* conn) {
  std::vector<uint8_t> request;
  while (ReadFrame(conn->socket_fd, request)) {
    WireReader reader(request);
    auto command_byte = reader.TakeU8();
    if (!command_byte.ok()) {
      break;  // empty frame: protocol violation, drop the connection
    }
    Command command = static_cast<Command>(*command_byte);

    std::vector<uint8_t> response;
    if (command == Command::kHello) {
      response = HandleHello(conn, reader);
    } else if (conn->tenant_id == 0) {
      response = EncodeErrorResponse(
          FailedPrecondition("HELLO with a tenant tag must precede other commands"));
    } else if (command == Command::kClose) {
      // Close runs inline and is never refused: cleanup must always be
      // possible, or backpressure would turn into an fd leak.
      response = HandleClose(conn, reader);
    } else {
      TenantState* tenant = TenantFor(conn->tenant_id);
      obs::TenantMetrics* metrics = obs::TenantMetricsFor(conn->tenant_id);
      bool admitted = true;
      if (tenant != nullptr && tenant->quotas.max_inflight > 0) {
        if (tenant->inflight.fetch_add(1) >= tenant->quotas.max_inflight) {
          tenant->inflight.fetch_sub(1);
          admitted = false;
        }
      } else if (tenant != nullptr) {
        tenant->inflight.fetch_add(1);
      }
      if (!admitted) {
        {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++stats_.rejected_quota;
        }
        if (metrics != nullptr) {
          metrics->rejected->Add(1);
        }
        response = EncodeErrorResponse(ResourceExhausted(
            "tenant '" + conn->tenant_tag + "' inflight quota exceeded"));
      } else {
        if (metrics != nullptr) {
          metrics->inflight->Add(1);
        }
        TraceContext ctx = BeginRequestContext(/*job_id=*/0, RequestClass::kDemand);
        ctx.tenant_id = conn->tenant_id;
        std::promise<std::vector<uint8_t>> done;
        std::future<std::vector<uint8_t>> result = done.get_future();
        Nanos start = SinceProcessStart();
        bool submitted = request_pool_.TrySubmit([this, conn, command, &reader, ctx, &done] {
          ScopedTraceContext scope(ctx);
          done.set_value(Dispatch(conn, command, reader));
        });
        if (!submitted) {
          {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.rejected_backpressure;
          }
          if (metrics != nullptr) {
            metrics->rejected->Add(1);
          }
          response = EncodeErrorResponse(
              ResourceExhausted("server saturated: request queue is full, retry"));
        } else {
          response = result.get();
          {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.requests_served;
          }
          if (metrics != nullptr) {
            metrics->requests->Add(1);
            metrics->materialize_wait_ns->Record(
                static_cast<uint64_t>(SinceProcessStart() - start));
            if (!response.empty() && response[0] == 0) {
              metrics->bytes_read->Add(static_cast<int64_t>(response.size() - 1));
            }
          }
        }
        if (metrics != nullptr) {
          metrics->inflight->Add(-1);
        }
        if (tenant != nullptr) {
          tenant->inflight.fetch_sub(1);
        }
      }
    }
    if (!WriteFrame(conn->socket_fd, response)) {
      break;
    }
  }

  // Session teardown: everything the connection still holds open is
  // closed, releasing pins and budget charges. A client that vanished
  // mid-materialize leaks nothing.
  for (const auto& [fd, charged] : conn->owned_fds) {
    backend_->Close(fd);
    if (charged > 0) {
      if (TenantState* tenant = TenantFor(conn->tenant_id)) {
        tenant->resident_bytes.fetch_sub(charged);
      }
      if (obs::TenantMetrics* metrics = obs::TenantMetricsFor(conn->tenant_id)) {
        metrics->resident_bytes->Add(-static_cast<int64_t>(charged));
      }
    }
  }
  conn->owned_fds.clear();
  {
    // Close under mutex_ and mark the fd gone so Stop never shutdowns a
    // descriptor number the kernel has already handed to someone else.
    std::lock_guard<std::mutex> lock(mutex_);
    ::close(conn->socket_fd);
    conn->socket_fd = -1;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    --stats_.active_connections;
  }
  // Last act: after this the accept loop may join and free us.
  conn->done.store(true);
}

std::vector<uint8_t> SandServer::HandleHello(Connection* conn, WireReader& reader) {
  if (conn->tenant_id != 0) {
    // Re-authenticating as another tenant would strand this connection's
    // fd charges on the old tenant's budget; a session is one tenant for
    // life — reconnect to switch.
    return EncodeErrorResponse(
        FailedPrecondition("connection already authenticated as tenant '" +
                           conn->tenant_tag + "'"));
  }
  auto version = reader.TakeU16();
  if (!version.ok()) {
    return EncodeErrorResponse(version.status());
  }
  if (*version != kProtocolVersion) {
    return EncodeErrorResponse(InvalidArgument(
        "protocol version mismatch: server speaks " + std::to_string(kProtocolVersion) +
        ", client sent " + std::to_string(*version)));
  }
  auto tag = reader.TakeString();
  if (!tag.ok()) {
    return EncodeErrorResponse(tag.status());
  }
  if (tag->empty()) {
    return EncodeErrorResponse(InvalidArgument("empty tenant tag"));
  }
  uint32_t id = obs::TenantRegistry::Get().Intern(*tag);
  {
    std::lock_guard<std::mutex> lock(tenants_mutex_);
    auto it = tenants_.find(id);
    if (it == tenants_.end()) {
      if (!options_.auto_register_tenants) {
        return EncodeErrorResponse(FailedPrecondition("unknown tenant: " + *tag));
      }
      auto state = std::make_unique<TenantState>();
      state->quotas = options_.default_quotas;
      if (options_.sched_cap_hook) {
        options_.sched_cap_hook(id, state->quotas.sched_max_running);
      }
      tenants_.emplace(id, std::move(state));
    }
  }
  conn->tenant_id = id;
  conn->tenant_tag = *tag;
  if (obs::TenantMetrics* metrics = obs::TenantMetricsFor(id)) {
    metrics->sessions->Add(1);
  }
  std::vector<uint8_t> response = EncodeOkHead();
  PutU32(response, id);
  return response;
}

std::vector<uint8_t> SandServer::HandleOpen(Connection* conn, WireReader& reader) {
  auto path = reader.TakeString();
  if (!path.ok()) {
    return EncodeErrorResponse(path.status());
  }
  auto options_bytes = reader.TakeBytes();
  if (!options_bytes.ok()) {
    return EncodeErrorResponse(options_bytes.status());
  }
  OpenOptions open_options;
  if (!options_bytes->empty()) {
    auto decoded = OpenOptions::Deserialize(*options_bytes);
    if (!decoded.ok()) {
      return EncodeErrorResponse(decoded.status());
    }
    open_options = *decoded;
  }
  if (options_.isolate_tenant_tasks && !TenantMayAccess(conn->tenant_tag, *path)) {
    return EncodeErrorResponse(FailedPrecondition(
        "tenant '" + conn->tenant_tag + "' may not access task '" +
        TaskComponent(*path) + "'"));
  }
  // Storage budget: admission happens at Open. Reads on fds the tenant
  // already holds keep serving even over budget — refusing those would
  // wedge a training loop mid-batch instead of pacing it.
  if (TenantState* tenant = TenantFor(conn->tenant_id)) {
    uint64_t budget = tenant->quotas.storage_budget_bytes;
    if (budget > 0 && !IsControlPath(*path) &&
        tenant->resident_bytes.load() >= budget) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.rejected_quota;
      }
      if (obs::TenantMetrics* metrics = obs::TenantMetricsFor(conn->tenant_id)) {
        metrics->rejected->Add(1);
      }
      return EncodeErrorResponse(ResourceExhausted(
          "tenant '" + conn->tenant_tag + "' storage budget exceeded (" +
          std::to_string(tenant->resident_bytes.load()) + " of " +
          std::to_string(budget) + " bytes open)"));
    }
  }
  auto fd = backend_->Open(*path, open_options);
  if (!fd.ok()) {
    return EncodeErrorResponse(fd.status());
  }
  conn->owned_fds.emplace(*fd, 0);
  std::vector<uint8_t> response = EncodeOkHead();
  PutI32(response, *fd);
  return response;
}

std::vector<uint8_t> SandServer::HandleClose(Connection* conn, WireReader& reader) {
  auto fd = reader.TakeI32();
  if (!fd.ok()) {
    return EncodeErrorResponse(fd.status());
  }
  if (!FdOwned(conn, *fd)) {
    return EncodeErrorResponse(InvalidArgument("fd not owned by this connection"));
  }
  ReleaseFd(conn, *fd);
  Status status = backend_->Close(*fd);
  if (!status.ok()) {
    return EncodeErrorResponse(status);
  }
  return EncodeOkHead();
}

void SandServer::ChargeFd(Connection* conn, int fd, uint64_t bytes) {
  auto it = conn->owned_fds.find(fd);
  if (it == conn->owned_fds.end() || it->second != 0 || bytes == 0) {
    return;
  }
  it->second = bytes;
  if (TenantState* tenant = TenantFor(conn->tenant_id)) {
    tenant->resident_bytes.fetch_add(bytes);
  }
  if (obs::TenantMetrics* metrics = obs::TenantMetricsFor(conn->tenant_id)) {
    metrics->resident_bytes->Add(static_cast<int64_t>(bytes));
  }
}

void SandServer::ReleaseFd(Connection* conn, int fd) {
  auto it = conn->owned_fds.find(fd);
  if (it == conn->owned_fds.end()) {
    return;
  }
  uint64_t charged = it->second;
  conn->owned_fds.erase(it);
  if (charged == 0) {
    return;
  }
  if (TenantState* tenant = TenantFor(conn->tenant_id)) {
    tenant->resident_bytes.fetch_sub(charged);
  }
  if (obs::TenantMetrics* metrics = obs::TenantMetricsFor(conn->tenant_id)) {
    metrics->resident_bytes->Add(-static_cast<int64_t>(charged));
  }
}

std::vector<uint8_t> SandServer::Dispatch(Connection* conn, Command command,
                                          WireReader& reader) {
  switch (command) {
    case Command::kOpen:
      return HandleOpen(conn, reader);

    case Command::kRead:
    case Command::kPRead: {
      auto fd = reader.TakeI32();
      if (!fd.ok()) {
        return EncodeErrorResponse(fd.status());
      }
      uint64_t offset = 0;
      if (command == Command::kPRead) {
        auto off = reader.TakeU64();
        if (!off.ok()) {
          return EncodeErrorResponse(off.status());
        }
        offset = *off;
      }
      auto max_bytes = reader.TakeU64();
      if (!max_bytes.ok()) {
        return EncodeErrorResponse(max_bytes.status());
      }
      if (!FdOwned(conn, *fd)) {
        return EncodeErrorResponse(InvalidArgument("fd not owned by this connection"));
      }
      // The client's max_bytes is untrusted: clamp the buffer to what the
      // object can actually yield before allocating, falling back to half
      // a frame only when the backend cannot size the fd.
      uint64_t count = std::min<uint64_t>(*max_bytes, kMaxFrameBytes / 2);
      if (auto size = backend_->SizeOf(*fd); size.ok()) {
        ChargeFd(conn, *fd, *size);
        uint64_t available = command == Command::kPRead
                                 ? (offset < *size ? *size - offset : 0)
                                 : *size;
        count = std::min(count, available);
      }
      std::vector<uint8_t> buffer(static_cast<size_t>(count));
      Result<size_t> read =
          command == Command::kRead
              ? backend_->Read(*fd, std::span<uint8_t>(buffer))
              : backend_->PRead(*fd, std::span<uint8_t>(buffer), offset);
      if (!read.ok()) {
        return EncodeErrorResponse(read.status());
      }
      buffer.resize(*read);
      std::vector<uint8_t> response = EncodeOkHead();
      PutBytes(response, buffer);
      return response;
    }

    case Command::kReadAll: {
      auto fd = reader.TakeI32();
      if (!fd.ok()) {
        return EncodeErrorResponse(fd.status());
      }
      if (!FdOwned(conn, *fd)) {
        return EncodeErrorResponse(InvalidArgument("fd not owned by this connection"));
      }
      auto bytes = backend_->ReadAllShared(*fd);
      if (!bytes.ok()) {
        return EncodeErrorResponse(bytes.status());
      }
      ChargeFd(conn, *fd, (*bytes)->size());
      if ((*bytes)->size() > kMaxFrameBytes - 16) {
        // Too big for one response frame: answer with an error the client
        // can act on (chunk via PRead) instead of dying on WriteFrame.
        return EncodeErrorResponse(OutOfRange(
            "object is " + std::to_string((*bytes)->size()) +
            " bytes, larger than the " + std::to_string(kMaxFrameBytes) +
            "-byte frame cap; read it in chunks with PRead"));
      }
      std::vector<uint8_t> response = EncodeOkHead();
      PutU32(response, static_cast<uint32_t>((*bytes)->size()));
      response.insert(response.end(), (*bytes)->begin(), (*bytes)->end());
      return response;
    }

    case Command::kSizeOf: {
      auto fd = reader.TakeI32();
      if (!fd.ok()) {
        return EncodeErrorResponse(fd.status());
      }
      if (!FdOwned(conn, *fd)) {
        return EncodeErrorResponse(InvalidArgument("fd not owned by this connection"));
      }
      auto size = backend_->SizeOf(*fd);
      if (!size.ok()) {
        return EncodeErrorResponse(size.status());
      }
      ChargeFd(conn, *fd, *size);
      std::vector<uint8_t> response = EncodeOkHead();
      PutU64(response, *size);
      return response;
    }

    case Command::kGetXattr: {
      auto fd = reader.TakeI32();
      if (!fd.ok()) {
        return EncodeErrorResponse(fd.status());
      }
      auto name = reader.TakeString();
      if (!name.ok()) {
        return EncodeErrorResponse(name.status());
      }
      if (!FdOwned(conn, *fd)) {
        return EncodeErrorResponse(InvalidArgument("fd not owned by this connection"));
      }
      auto value = backend_->GetXattr(*fd, *name);
      if (!value.ok()) {
        return EncodeErrorResponse(value.status());
      }
      std::vector<uint8_t> response = EncodeOkHead();
      PutString(response, *value);
      return response;
    }

    case Command::kListDir: {
      auto path = reader.TakeString();
      if (!path.ok()) {
        return EncodeErrorResponse(path.status());
      }
      // Same isolation gate as Open: entry names are data too.
      if (options_.isolate_tenant_tasks && !TenantMayAccess(conn->tenant_tag, *path)) {
        return EncodeErrorResponse(FailedPrecondition(
            "tenant '" + conn->tenant_tag + "' may not list task '" +
            TaskComponent(*path) + "'"));
      }
      auto entries = backend_->ListDir(*path);
      if (!entries.ok()) {
        return EncodeErrorResponse(entries.status());
      }
      // The root listing enumerates task names; under isolation a tenant
      // only sees its own (plus the shared control tree).
      if (options_.isolate_tenant_tasks && TaskComponent(*path).empty()) {
        entries->erase(
            std::remove_if(entries->begin(), entries->end(),
                           [conn](const std::string& entry) {
                             return !TenantMayAccess(conn->tenant_tag, "/" + entry);
                           }),
            entries->end());
      }
      std::vector<uint8_t> response = EncodeOkHead();
      PutU32(response, static_cast<uint32_t>(entries->size()));
      for (const std::string& entry : *entries) {
        PutString(response, entry);
      }
      return response;
    }

    case Command::kHello:
    case Command::kClose:
      break;  // handled inline by ServeConnection
  }
  return EncodeErrorResponse(
      InvalidArgument("unknown command " + std::to_string(static_cast<int>(command))));
}

ServerStats SandServer::stats() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace net
}  // namespace sand
