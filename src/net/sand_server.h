// SandServer: multi-tenant socket front-end for a SandApi backend
// (DESIGN.md §13).
//
// One server process owns a SandFs (and through it the cache, scheduler
// and prefetcher); trainers connect over a unix or loopback TCP socket,
// authenticate to a tenant tag (HELLO), and speak the SandApi verb set in
// length-framed request/response messages. A connection is a session:
// every fd it opens is owned by the connection and force-closed when it
// disconnects, so a trainer crash mid-materialize leaks nothing.
//
// Pipelining: HELLO negotiates a protocol version. v2 connections carry a
// u64 request id on every frame; the per-connection reader thread
// admission-checks each request and hands it to the shared worker pool
// immediately, so many requests from one connection execute concurrently
// and responses are written *out of order, as they complete* (a
// per-connection write mutex keeps frames atomic; bulk ReadAllShared
// payloads leave via scatter-gather writes straight from the cache's
// SharedBytes, no frame-assembly copy). v1 connections keep the strict
// serial contract: one request dispatched at a time, responses in order —
// old clients work unchanged against a pipelined server.
//
// Tenancy:
//   - HELLO interns the tag in obs::TenantRegistry; the dense id rides
//     TraceContext.tenant_id through every pool task and scheduler job
//     the connection's requests cause, which is what the scheduler's
//     fair-share rotation and running caps key on.
//   - Admission control is two gates, checked per request *before* work
//     starts: the tenant inflight quota (max concurrent requests across
//     all of the tenant's connections — pipelined requests each take a
//     slot, so a deep window cannot bypass the quota) and the shared
//     request pool's bounded queue (WorkerPool::TrySubmit). Either
//     refusal is an immediate RESOURCE_EXHAUSTED response — saturation
//     never blocks the socket, so a client always gets an answer it can
//     retry on.
//   - The storage budget counts bytes of objects a tenant holds open
//     (charged when a read first learns an object's size, released on
//     close/disconnect). Over budget, new Opens are refused with
//     RESOURCE_EXHAUSTED while reads on already-open fds still serve.
//   - Optional SO_PEERCRED auth on unix sockets: with Options::
//     allowed_uids set, HELLO is refused (FAILED_PRECONDITION) unless the
//     peer's kernel-reported uid is on the list — a local process can no
//     longer claim an arbitrary tenant tag just by connecting.
//   - Per-tenant metrics land in "sand.tenant.<tag>.*", served by SandFs
//     as /.sand/tenants/<tag>/metrics — readable over this same protocol.
//
// Threading: one accept thread per listener, one reader thread per
// connection, verbs execute on the shared WorkerPool and write their own
// responses; an optional reaper thread shuts down connections idle past
// Options::idle_timeout_ms (counted in sand.net.idle_reaped), releasing
// their fd and budget charges.

#ifndef SAND_NET_SAND_SERVER_H_
#define SAND_NET_SAND_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/common/worker_pool.h"
#include "src/net/wire.h"
#include "src/vfs/sand_api.h"

namespace sand {
namespace obs {
class Counter;
}  // namespace obs

class ObjectStore;

namespace net {

// Per-tenant resource limits. Defaults are permissive; RegisterTenant (or
// Options::default_quotas for auto-registered tenants) tightens them.
struct TenantQuotas {
  // Max wire requests executing concurrently across the tenant's
  // connections; <= 0 means unlimited.
  int max_inflight = 0;
  // Concurrent materialization-scheduler jobs (forwarded to the
  // sched_cap_hook, i.e. MaterializationScheduler::SetTenantRunningCap);
  // <= 0 means uncapped.
  int sched_max_running = 0;
  // Bytes of open objects before new Opens are refused; 0 means unlimited.
  uint64_t storage_budget_bytes = 0;
};

struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t requests_served = 0;
  uint64_t rejected_backpressure = 0;  // pool TrySubmit refusals
  uint64_t rejected_quota = 0;         // tenant inflight / storage refusals
  uint64_t idle_reaped = 0;            // connections closed by the idle reaper
  int active_connections = 0;
};

class SandServer {
 public:
  struct Options {
    // Listen endpoints; enable either or both. TCP binds 127.0.0.1 (port 0
    // picks an ephemeral port, read it back with tcp_port()).
    std::string unix_path;
    int tcp_port = -1;

    // The shared request-execution rail: pool threads block on demand
    // materialization, the bounded queue is the backpressure surface.
    int request_threads = 4;
    size_t request_queue_depth = 64;

    // Unknown HELLO tags get default_quotas when true; otherwise they are
    // refused with FAILED_PRECONDITION.
    bool auto_register_tenants = true;
    TenantQuotas default_quotas;

    // When true, a tenant may only open view paths whose task component is
    // its own tag or "<tag>_..." (control paths under /.sand stay open to
    // everyone). Off by default: single-team deployments share tasks.
    bool isolate_tenant_tasks = false;

    // Connections with no traffic and no requests in flight for longer
    // than this are shut down (their fds and budget charges released);
    // <= 0 disables reaping. Each reap bumps sand.net.idle_reaped.
    int idle_timeout_ms = 0;

    // Unix-socket peer-cred allowlist: when non-empty, HELLO checks the
    // connecting process's uid (SO_PEERCRED) against this list and
    // refuses with FAILED_PRECONDITION on a miss — or when no credential
    // is available at all (TCP), so the allowlist fails closed.
    std::vector<uint32_t> allowed_uids;

    // Wired by the embedder to the scheduler that serves the backend,
    // e.g. [&](uint32_t id, int cap) { sched.SetTenantRunningCap(id, cap); }.
    // Called under the server's tenant lock when quotas are (re)applied.
    std::function<void(uint32_t tenant_id, int max_running)> sched_cap_hook;

    // Optional object-store backend for the cluster verbs (kPutObject,
    // kGetObject, kStatObject, kDeleteObject): the shard of the object
    // namespace this node owns. Must outlive the server. When null the
    // store verbs answer FAILED_PRECONDITION — a plain serving node.
    ObjectStore* object_store = nullptr;
  };

  // `backend` must outlive the server. The server never closes fds it did
  // not open, so an embedder can share one SandFs with in-process readers.
  SandServer(SandApi* backend, Options options);
  ~SandServer();

  SandServer(const SandServer&) = delete;
  SandServer& operator=(const SandServer&) = delete;

  // Binds listeners and starts the accept loops. Fails (and leaves the
  // server stopped) if no endpoint is configured or a bind fails.
  Status Start();

  // Stops accepting, severs live connections (their fds are closed), joins
  // all threads. Idempotent.
  void Stop();

  // Declares a tenant and its quotas (before or after Start). Re-register
  // to change quotas at runtime.
  void RegisterTenant(const std::string& tag, const TenantQuotas& quotas);

  // Bound TCP port after Start (useful with tcp_port = 0); -1 when TCP is
  // not enabled.
  int tcp_port() const { return bound_tcp_port_; }

  ServerStats stats();

 private:
  struct TenantState {
    TenantQuotas quotas;
    std::atomic<int> inflight{0};
    std::atomic<uint64_t> resident_bytes{0};
  };

  struct Connection {
    int socket_fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};

    // Set once by HandleHello on the reader thread before any concurrent
    // dispatch exists; read-only afterwards.
    uint16_t protocol_version = 1;
    uint32_t tenant_id = 0;
    std::string tenant_tag;

    // Response frames from concurrently-completing dispatches must not
    // interleave mid-frame.
    std::mutex write_mutex;

    // fd -> bytes charged against the tenant storage budget (0 until a
    // read learns the object's size). Pipelined dispatches and the inline
    // Close handler touch this concurrently.
    std::mutex fd_mutex;
    std::map<int, uint64_t> owned_fds;

    // Requests dispatched to the pool and not yet answered; teardown
    // waits for zero before closing the session's fds.
    std::mutex inflight_mutex;
    std::condition_variable inflight_cv;
    int inflight = 0;

    // Monotonic ns of the last request frame (idle reaping).
    std::atomic<int64_t> last_active_ns{0};
    std::atomic<bool> reaped{false};
  };

  // A response ready to leave: scalar head (status byte + small body) and
  // an optional bulk payload that rides a scatter-gather write.
  struct WireResponse {
    std::vector<uint8_t> head;
    SharedBytes body;  // may be null
  };

  void AcceptLoop(int listen_fd);
  void ServeConnection(Connection* conn);
  void ReaperLoop();
  // Executes one decoded request, producing the response. Runs on the
  // request pool for data verbs.
  WireResponse Dispatch(Connection* conn, Command command, WireReader& reader);

  // Frames and writes one response (request id prepended on v2) under the
  // connection's write mutex.
  bool WriteResponse(Connection* conn, bool has_id, uint64_t request_id,
                     const WireResponse& response);

  std::vector<uint8_t> HandleHello(Connection* conn, WireReader& reader);
  std::vector<uint8_t> HandleOpen(Connection* conn, WireReader& reader);
  std::vector<uint8_t> HandleClose(Connection* conn, WireReader& reader);

  // Charges `fd`'s object size to the tenant budget once known.
  void ChargeFd(Connection* conn, int fd, uint64_t bytes);
  void ReleaseFd(Connection* conn, int fd);
  bool FdOwned(Connection* conn, int fd) const {
    std::lock_guard<std::mutex> lock(conn->fd_mutex);
    return conn->owned_fds.count(fd) != 0;
  }

  TenantState* TenantFor(uint32_t tenant_id);

  SandApi* backend_;
  Options options_;
  WorkerPool request_pool_;
  obs::Counter* idle_reaped_counter_;

  std::mutex mutex_;  // listeners_, connections_, running_
  std::condition_variable reaper_cv_;
  std::vector<int> listen_fds_;
  std::vector<std::thread> accept_threads_;
  std::thread reaper_thread_;
  std::vector<std::unique_ptr<Connection>> connections_;
  bool running_ = false;
  int bound_tcp_port_ = -1;

  std::mutex tenants_mutex_;
  std::map<uint32_t, std::unique_ptr<TenantState>> tenants_;

  std::mutex stats_mutex_;
  ServerStats stats_;
};

}  // namespace net
}  // namespace sand

#endif  // SAND_NET_SAND_SERVER_H_
