// ClientPool: one SandApi over N pipelined connections to one server.
//
// A single SandClient connection already pipelines, but one connection is
// still one byte stream: its responses serialize through one socket
// buffer and one demux thread, and the server charges admission per
// connection. A trainer process that wants to fan out — several loader
// threads, deep read-ahead windows — opens a small pool instead and uses
// it exactly like a single client: ClientPool is itself a SandApi.
//
// Routing: path verbs (Open, ListDir) go to the least-loaded connection
// (fewest requests in flight). Fd verbs are pinned — server fds are
// connection-scoped, so the pool remembers which connection opened each
// fd and routes every later verb on it there (a foreign fd is
// INVALID_ARGUMENT, same as the server would answer). All connections
// authenticate as the same tenant, so server-side quotas see one tenant
// regardless of the fan-out.
//
// Backpressure: each connection carries Options::max_inflight_per_conn;
// when the picked connection is at its cap the call fails immediately
// with RESOURCE_EXHAUSTED — the same retry-after-backoff contract as the
// server's admission control, surfaced before bytes ever hit the wire.

#ifndef SAND_NET_CLIENT_POOL_H_
#define SAND_NET_CLIENT_POOL_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/net/sand_client.h"
#include "src/vfs/sand_api.h"

namespace sand {
namespace net {

class ClientPool : public SandApi {
 public:
  struct Options {
    // Endpoint + tenant for every connection (SandClient::Options
    // max_inflight is overridden by max_inflight_per_conn below).
    SandClient::Options client;
    // Connections to dial; each is its own session on the server.
    int connections = 2;
    // Per-connection inflight cap; <= 0 means unlimited.
    int max_inflight_per_conn = 64;
  };

  // Dials all connections up front; any HELLO failure fails the pool.
  static Result<std::unique_ptr<ClientPool>> Connect(const Options& options);

  ~ClientPool() override = default;

  ClientPool(const ClientPool&) = delete;
  ClientPool& operator=(const ClientPool&) = delete;

  uint32_t tenant_id() const { return clients_.front()->tenant_id(); }
  size_t connections() const { return clients_.size(); }
  // Total requests in flight across the pool.
  size_t inflight() const;

  using SandApi::Open;
  Result<int> Open(const std::string& path, const OpenOptions& options) override;
  Result<size_t> Read(int fd, std::span<uint8_t> buffer) override;
  Result<size_t> PRead(int fd, std::span<uint8_t> buffer, uint64_t offset) override;
  Result<SharedBytes> ReadAllShared(int fd) override;
  Future<SharedBytes> ReadAllSharedAsync(int fd) override;
  Result<uint64_t> SizeOf(int fd) override;
  Result<std::string> GetXattr(int fd, const std::string& name) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;
  Status Close(int fd) override;

 private:
  ClientPool() = default;

  // Fewest-inflight connection (ties break toward the first).
  SandClient* LeastLoaded() const;
  // The connection that owns `fd`, or null.
  SandClient* OwnerOf(int fd) const;

  std::vector<std::unique_ptr<SandClient>> clients_;
  mutable std::mutex mutex_;  // fd_owner_
  std::map<int, SandClient*> fd_owner_;
};

}  // namespace net
}  // namespace sand

#endif  // SAND_NET_CLIENT_POOL_H_
