// Wire primitives for the SAND socket protocol (DESIGN.md §13).
//
// The process boundary keeps the shape rpc_ops proved out: length-framed
// messages over a byte stream, little-endian scalars, and a leading status
// byte on every response so failures cross the wire as real Status values.
//
//   frame    : u32 length | payload          (length caps at kMaxFrameBytes)
//
// Two payload shapes, negotiated per connection at HELLO:
//
//   v1 (serial — strict request/response, one outstanding per connection)
//     request  : u8 command | command body
//     response : u8 status (ErrorCode; 0 = ok) | ok body or error message
//
//   v2 (pipelined — any number outstanding, responses out of order)
//     request  : u64 request_id | u8 command | command body
//     response : u64 request_id | u8 status | ok body or error message
//
// The HELLO exchange itself is always v1-shaped (it is what carries the
// version), so a server can parse it before knowing what the client
// speaks; the negotiated version (min of both sides) governs every frame
// after the ok HELLO response. Request ids are client-assigned and only
// need to be unique among that connection's in-flight requests.
//
// Strings are u32 length | bytes. All helpers here are transport-agnostic
// byte shuffling; the verbs live in sand_server.cc / sand_client.cc.

#ifndef SAND_NET_WIRE_H_
#define SAND_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace sand {
namespace net {

// Upper bound on one frame. Batches are tens of MiB at most; 128 MiB
// leaves headroom for outsized objects while keeping the worst-case
// allocation a hostile length word can force per connection bounded.
// ReadFrame refuses larger length words before the allocation, not after.
inline constexpr uint32_t kMaxFrameBytes = 1u << 27;

// Highest protocol revision this build speaks, sent in HELLO. The server
// accepts any client in [kMinProtocolVersion, kProtocolVersion] and the
// connection runs at the minimum of the two sides, so old serial clients
// keep working against a pipelined server.
inline constexpr uint16_t kProtocolVersion = 2;
inline constexpr uint16_t kMinProtocolVersion = 1;

// Request commands. Mirrors the SandApi verb set plus the HELLO
// authentication handshake and the object-store verbs the cluster layer
// uses to move materialized views between store nodes. The store verbs
// are additive: they need no version bump because old clients never send
// them and old servers answer "unknown command" (INVALID_ARGUMENT), which
// the cluster client treats as a miss.
enum class Command : uint8_t {
  kHello = 1,    // u16 version | string tenant
  kOpen = 2,     // string path | string open_options (OpenOptions wire form)
  kRead = 3,     // i32 fd | u64 max_bytes
  kPRead = 4,    // i32 fd | u64 offset | u64 max_bytes
  kReadAll = 5,  // i32 fd
  kSizeOf = 6,   // i32 fd
  kGetXattr = 7,  // i32 fd | string name
  kListDir = 8,  // string path
  kClose = 9,    // i32 fd
  // Object-store verbs (served only when the server has a store backend).
  kPutObject = 10,     // string key | bytes data            -> ok
  kGetObject = 11,     // string key                         -> ok | bytes data
  kStatObject = 12,    // string key                         -> ok | u8 exists | u64 size
  kDeleteObject = 13,  // string key                         -> ok
};

// Machine-readable prefix on the HELLO refusal message when the server
// rejects the offered protocol version. The status code stays
// INVALID_ARGUMENT (older v2 clients already key on it), but clients
// deciding whether to re-dial at v1 match this tag structurally instead
// of grepping the human-readable text, so rewording the message can no
// longer break version negotiation.
inline constexpr const char kVersionRefusedTag[] = "[version-refused] ";

// --- scalar/string packing ---------------------------------------------------

void PutU8(std::vector<uint8_t>& out, uint8_t value);
void PutU16(std::vector<uint8_t>& out, uint16_t value);
void PutU32(std::vector<uint8_t>& out, uint32_t value);
void PutU64(std::vector<uint8_t>& out, uint64_t value);
void PutI32(std::vector<uint8_t>& out, int32_t value);
void PutString(std::vector<uint8_t>& out, const std::string& value);
void PutBytes(std::vector<uint8_t>& out, const std::vector<uint8_t>& value);

// Cursor over a received payload; every Take checks bounds and returns
// OUT_OF_RANGE on truncation instead of reading past the buffer.
class WireReader {
 public:
  explicit WireReader(const std::vector<uint8_t>& buffer) : buffer_(buffer) {}

  Result<uint8_t> TakeU8();
  Result<uint16_t> TakeU16();
  Result<uint32_t> TakeU32();
  Result<uint64_t> TakeU64();
  Result<int32_t> TakeI32();
  Result<std::string> TakeString();
  Result<std::vector<uint8_t>> TakeBytes();
  // The unread remainder (for trailing payloads).
  std::vector<uint8_t> TakeRest();
  // Advances past `count` bytes (re-parsing a payload whose header was
  // already consumed by another reader).
  Status Skip(size_t count);

  size_t remaining() const { return buffer_.size() - pos_; }
  size_t position() const { return pos_; }

 private:
  Status Need(size_t count);

  const std::vector<uint8_t>& buffer_;
  size_t pos_ = 0;
};

// --- status coding -----------------------------------------------------------

// Response head: status byte (+ message when not ok). The ok body is
// appended by the caller after an ok head.
std::vector<uint8_t> EncodeOkHead();
std::vector<uint8_t> EncodeErrorResponse(const Status& status);

// Decodes a response's status head. A non-ok head consumes the whole
// remaining payload as the error message; on ok the body starts at byte 1
// (construct a WireReader and TakeU8 the head to skip it).
Status DecodeResponseStatus(const std::vector<uint8_t>& response);

// --- framed stream I/O -------------------------------------------------------

// Blocking full-frame write/read on a connected socket/pipe fd. Returns
// false on EOF, a peer reset, or an oversized length word; these helpers
// never throw and never short-write.
bool WriteFrame(int fd, const std::vector<uint8_t>& payload);
bool ReadFrame(int fd, std::vector<uint8_t>& payload);

// Scatter-gather frame write: emits one frame whose payload is
// `head` followed by `body_size` bytes at `body`, without assembling the
// concatenation in memory. The length word, head, and body go out in a
// single sendmsg when the fd is a socket, so a large ReadAllShared payload
// travels from the cache's SharedBytes allocation straight to the kernel
// with no frame-assembly copy. `body` may be null when body_size is 0.
bool WriteFrameScatter(int fd, const std::vector<uint8_t>& head,
                       const uint8_t* body, size_t body_size);

// --- sockets -----------------------------------------------------------------

// Listening endpoints. Unix paths are unlinked before bind; TCP binds
// 127.0.0.1 and reports the chosen port (use port 0 for ephemeral).
Result<int> ListenUnix(const std::string& path, int backlog);
Result<int> ListenTcp(int port, int backlog, int* bound_port);

// Client connects. Both return a connected stream fd.
Result<int> ConnectUnix(const std::string& path);
Result<int> ConnectTcp(const std::string& host, int port);

// Per-connection socket tuning for the request/response workload: disables
// Nagle (TCP_NODELAY — small frames must not wait for delayed ACKs) and,
// when `keepalive` is set, turns on SO_KEEPALIVE so a silently vanished
// peer is eventually detected. No-ops harmlessly on unix sockets/pipes.
void TuneStreamSocket(int fd, bool keepalive);

// Credentials of the peer of a connected unix socket (SO_PEERCRED).
// Fails on TCP and non-socket fds — callers enforcing a uid allowlist
// treat that as "no credential", i.e. refuse.
Result<uint32_t> PeerUid(int fd);

}  // namespace net
}  // namespace sand

#endif  // SAND_NET_WIRE_H_
