// CPU busy-time accounting for preprocessing threads.
//
// Worker threads bracket real preprocessing work with ScopedCpuWork so the
// energy model and the Fig. 2/5 benches can attribute CPU time per
// component (decode, augment, compress, io).

#ifndef SAND_SIM_CPU_METER_H_
#define SAND_SIM_CPU_METER_H_

#include <array>
#include <atomic>

#include "src/common/clock.h"

namespace sand {

enum class CpuWorkKind : int {
  kDecode = 0,
  kAugment = 1,
  kCompress = 2,
  kIo = 3,
  kOther = 4,
};
constexpr int kNumCpuWorkKinds = 5;

const char* CpuWorkKindName(CpuWorkKind kind);

// Thread-safe accumulator of busy nanoseconds per work kind.
class CpuMeter {
 public:
  void Add(CpuWorkKind kind, Nanos duration) {
    busy_[static_cast<int>(kind)].fetch_add(duration, std::memory_order_relaxed);
  }

  Nanos Busy(CpuWorkKind kind) const {
    return busy_[static_cast<int>(kind)].load(std::memory_order_relaxed);
  }

  Nanos TotalBusy() const {
    Nanos total = 0;
    for (const auto& slot : busy_) {
      total += slot.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (auto& slot : busy_) {
      slot.store(0, std::memory_order_relaxed);
    }
  }

 private:
  std::array<std::atomic<Nanos>, kNumCpuWorkKinds> busy_{};
};

// RAII: measures the enclosed scope with a wall clock and books it.
class ScopedCpuWork {
 public:
  ScopedCpuWork(CpuMeter& meter, CpuWorkKind kind)
      : meter_(meter), kind_(kind), start_(WallClock::Get().Now()) {}
  ~ScopedCpuWork() { meter_.Add(kind_, WallClock::Get().Now() - start_); }

  ScopedCpuWork(const ScopedCpuWork&) = delete;
  ScopedCpuWork& operator=(const ScopedCpuWork&) = delete;

 private:
  CpuMeter& meter_;
  CpuWorkKind kind_;
  Nanos start_;
};

}  // namespace sand

#endif  // SAND_SIM_CPU_METER_H_
