// GPU simulator.
//
// No physical GPU exists in this environment, so training compute, NVDEC
// hardware decode, and device memory are modeled. Time is kept consistent
// with the (real) CPU-side preprocessing work by making modeled GPU
// operations occupy real wall-clock time (scaled down to milliseconds):
// TrainStep(d) sleeps for d and books d of busy time. Utilization and stall
// figures then fall out of plain wall-clock arithmetic, exactly as they
// would with a real device.

#ifndef SAND_SIM_GPU_MODEL_H_
#define SAND_SIM_GPU_MODEL_H_

#include <mutex>
#include <string>

#include "src/common/clock.h"
#include "src/common/result.h"

namespace sand {

struct GpuSpec {
  std::string name = "sim-a100";
  // Device memory, scaled: the real A100 has 40 GiB; the simulated datasets
  // are ~1000x smaller, so the default is scaled accordingly.
  uint64_t memory_bytes = 48ULL * 1024 * 1024;
  // NVDEC-style hardware decoder throughput (compressed bytes/sec).
  double nvdec_bytes_per_sec = 256.0 * 1024 * 1024;
  // Extra device memory the hardware decode path pins per decode session
  // (bitstream + reference-frame buffers).
  uint64_t nvdec_session_bytes = 8ULL * 1024 * 1024;
  // Multiplies every modeled duration; tests use small values to run fast.
  double time_scale = 1.0;
};

// Cumulative per-run counters.
struct GpuRunStats {
  Nanos busy_ns = 0;        // time spent in TrainStep
  Nanos nvdec_ns = 0;       // time spent in hardware decode
  Nanos wall_ns = 0;        // BeginRun..EndRun (or ..now)
  uint64_t steps = 0;       // TrainStep invocations
  uint64_t frames_decoded = 0;

  // Fraction of wall time the SMs were busy training.
  double Utilization() const {
    return wall_ns <= 0 ? 0.0 : static_cast<double>(busy_ns) / static_cast<double>(wall_ns);
  }
  Nanos StallNs() const { return wall_ns - busy_ns - nvdec_ns; }
};

class GpuModel {
 public:
  explicit GpuModel(GpuSpec spec = {});

  const GpuSpec& spec() const { return spec_; }

  // Marks the start of a measured run; resets counters.
  void BeginRun();
  // Freezes wall time for the run. Stats keep accumulating if more work is
  // issued, but normal usage is Begin..work..End.
  void EndRun();
  GpuRunStats run_stats();

  // Synchronous training step of modeled duration `duration` (pre-scaling).
  void TrainStep(Nanos duration);

  // Hardware (NVDEC-like) decode of `compressed_bytes`, producing `frames`
  // frames. Occupies the decoder for bytes/throughput seconds.
  void DecodeOnGpu(uint64_t compressed_bytes, uint64_t frames);

  // Device memory accounting.
  Status AllocateMemory(uint64_t bytes);
  void FreeMemory(uint64_t bytes);
  uint64_t used_memory();
  uint64_t available_memory();

 private:
  void SleepScaled(Nanos duration);

  const GpuSpec spec_;
  std::mutex mutex_;
  GpuRunStats stats_;
  Nanos run_start_ = 0;
  bool running_ = false;
  uint64_t used_memory_ = 0;
};

}  // namespace sand

#endif  // SAND_SIM_GPU_MODEL_H_
