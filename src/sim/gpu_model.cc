#include "src/sim/gpu_model.h"

#include <chrono>
#include <thread>

#include "src/common/strings.h"

namespace sand {

GpuModel::GpuModel(GpuSpec spec) : spec_(std::move(spec)) {}

void GpuModel::SleepScaled(Nanos duration) {
  Nanos scaled = static_cast<Nanos>(static_cast<double>(duration) * spec_.time_scale);
  if (scaled > 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(scaled));
  }
}

void GpuModel::BeginRun() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = GpuRunStats{};
  run_start_ = WallClock::Get().Now();
  running_ = true;
}

void GpuModel::EndRun() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_) {
    stats_.wall_ns = WallClock::Get().Now() - run_start_;
    running_ = false;
  }
}

GpuRunStats GpuModel::run_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  GpuRunStats stats = stats_;
  if (running_) {
    stats.wall_ns = WallClock::Get().Now() - run_start_;
  }
  return stats;
}

void GpuModel::TrainStep(Nanos duration) {
  SleepScaled(duration);
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.busy_ns += static_cast<Nanos>(static_cast<double>(duration) * spec_.time_scale);
  ++stats_.steps;
}

void GpuModel::DecodeOnGpu(uint64_t compressed_bytes, uint64_t frames) {
  Nanos duration = 0;
  if (spec_.nvdec_bytes_per_sec > 0) {
    duration = static_cast<Nanos>(static_cast<double>(compressed_bytes) /
                                  spec_.nvdec_bytes_per_sec * kNanosPerSecond);
  }
  SleepScaled(duration);
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.nvdec_ns += static_cast<Nanos>(static_cast<double>(duration) * spec_.time_scale);
  stats_.frames_decoded += frames;
}

Status GpuModel::AllocateMemory(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (used_memory_ + bytes > spec_.memory_bytes) {
    return ResourceExhausted(
        StrFormat("GPU OOM: %llu + %llu > %llu",
                  static_cast<unsigned long long>(used_memory_),
                  static_cast<unsigned long long>(bytes),
                  static_cast<unsigned long long>(spec_.memory_bytes)));
  }
  used_memory_ += bytes;
  return Status::Ok();
}

void GpuModel::FreeMemory(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  used_memory_ = bytes > used_memory_ ? 0 : used_memory_ - bytes;
}

uint64_t GpuModel::used_memory() {
  std::lock_guard<std::mutex> lock(mutex_);
  return used_memory_;
}

uint64_t GpuModel::available_memory() {
  std::lock_guard<std::mutex> lock(mutex_);
  return spec_.memory_bytes - used_memory_;
}

}  // namespace sand
