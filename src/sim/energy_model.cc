#include "src/sim/energy_model.h"

#include <algorithm>

namespace sand {

EnergyBreakdown ComputeEnergy(const PowerSpec& spec, Nanos wall_ns, Nanos cpu_busy_core_ns,
                              int cpu_cores, Nanos gpu_busy_ns, Nanos nvdec_busy_ns,
                              int gpu_count) {
  EnergyBreakdown out;
  double wall_s = ToSeconds(std::max<Nanos>(wall_ns, 0));
  double cpu_busy_s = std::min(ToSeconds(std::max<Nanos>(cpu_busy_core_ns, 0)),
                               wall_s * cpu_cores);
  double cpu_idle_s = wall_s * cpu_cores - cpu_busy_s;
  out.cpu_joules = cpu_busy_s * spec.cpu_core_busy_watts + cpu_idle_s * spec.cpu_core_idle_watts;

  double gpu_busy_s = std::min(ToSeconds(std::max<Nanos>(gpu_busy_ns, 0)), wall_s * gpu_count);
  double gpu_idle_s = wall_s * gpu_count - gpu_busy_s;
  out.gpu_compute_joules =
      gpu_busy_s * spec.gpu_busy_watts + gpu_idle_s * spec.gpu_idle_watts;

  double nvdec_s = std::min(ToSeconds(std::max<Nanos>(nvdec_busy_ns, 0)), wall_s * gpu_count);
  out.gpu_decode_joules = nvdec_s * spec.nvdec_watts;
  return out;
}

}  // namespace sand
