// Component-wise energy accounting (Fig. 5 / Fig. 15).
//
// Energy is integrated post-hoc from busy/idle durations: each component
// draws busy power while active and idle power otherwise over the run's
// wall time. The paper's relative results (CPU share of training energy,
// savings from eliminating redundant decode) depend only on these ratios.

#ifndef SAND_SIM_ENERGY_MODEL_H_
#define SAND_SIM_ENERGY_MODEL_H_

#include "src/common/clock.h"

namespace sand {

struct PowerSpec {
  // Per-core CPU power (active preprocessing vs idle).
  double cpu_core_busy_watts = 18.0;
  double cpu_core_idle_watts = 1.5;
  // Whole-GPU power.
  double gpu_busy_watts = 330.0;
  double gpu_idle_watts = 55.0;
  // NVDEC block adds this on top of GPU idle/busy while decoding.
  double nvdec_watts = 65.0;
};

struct EnergyBreakdown {
  double cpu_joules = 0;
  double gpu_compute_joules = 0;
  double gpu_decode_joules = 0;
  double Total() const { return cpu_joules + gpu_compute_joules + gpu_decode_joules; }
  double CpuShare() const { return Total() <= 0 ? 0.0 : cpu_joules / Total(); }
};

// Computes the energy of a run given component busy times.
//
// cpu_busy_core_ns: total CPU busy time summed over cores (i.e. 2 cores
// busy for 1s = 2s). wall_ns spans the run; idle power is charged for the
// remainder on all `cpu_cores` cores and on the GPU.
EnergyBreakdown ComputeEnergy(const PowerSpec& spec, Nanos wall_ns, Nanos cpu_busy_core_ns,
                              int cpu_cores, Nanos gpu_busy_ns, Nanos nvdec_busy_ns,
                              int gpu_count = 1);

}  // namespace sand

#endif  // SAND_SIM_ENERGY_MODEL_H_
