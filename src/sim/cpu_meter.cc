#include "src/sim/cpu_meter.h"

namespace sand {

const char* CpuWorkKindName(CpuWorkKind kind) {
  switch (kind) {
    case CpuWorkKind::kDecode:
      return "decode";
    case CpuWorkKind::kAugment:
      return "augment";
    case CpuWorkKind::kCompress:
      return "compress";
    case CpuWorkKind::kIo:
      return "io";
    case CpuWorkKind::kOther:
      return "other";
  }
  return "unknown";
}

}  // namespace sand
