// Always-on pipeline tracer with bounded memory (DESIGN.md §7, §12).
//
// SAND_SPAN("decode") at the top of a scope records a complete event —
// name, start, duration, small thread id, plus the causal identity of the
// request it belongs to (trace id, span id, parent span id, job id,
// request class from src/common/trace_context.h) — into a fixed-capacity
// ring of atomic slots when the scope exits. Recording is lock-free: one
// fetch_add ticket plus a handful of relaxed stores (~100 ns measured by
// bench_micro_obs), so spans stay enabled in production; once the ring
// wraps, the oldest events are overwritten and counted as
// `sand.trace.dropped`.
//
// While a span is open it is also the thread's current *parent*: nested
// spans and any work submitted to pools/futures/the scheduler from inside
// it inherit its span id as parent_span_id, so chrome://tracing shows one
// connected flame per request instead of disjoint per-thread slivers.
//
// ToChromeJson() renders the ring as Chrome trace-event JSON ("X" complete
// events with trace/span/parent/job/class args, plus "s"/"f" flow events
// linking each child span to its parent across threads). Load it at
// chrome://tracing or ui.perfetto.dev. The dump is exported as the SAND
// view "/.sand/trace" and written by benches under --trace-out.
//
// Ring capacity defaults to 16Ki slots, overridable with the
// SAND_TRACE_RING_SLOTS environment variable or ServiceOptions
// (trace_ring_slots) via Resize(). Resizing swaps in a fresh ring (old
// events are lost; the retired ring is intentionally leaked so concurrent
// lock-free recorders never touch freed memory).
//
// Span names must be string literals (or otherwise immortal): the ring
// stores the pointer, not a copy.

#ifndef SAND_OBS_TRACE_H_
#define SAND_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/threading.h"
#include "src/common/trace_context.h"

namespace sand {
namespace obs {

class Counter;

// One decoded ring event (tests and tools; the JSON dump is built from the
// same data).
struct TraceEvent {
  const char* name = nullptr;
  int64_t start_ns = 0;
  int64_t duration_ns = 0;
  uint32_t tid = 0;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  uint32_t job_id = 0;
  RequestClass request_class = RequestClass::kNone;
};

class Tracer {
 public:
  // 16Ki events x 64 B: 1 MiB resident, ~the last few seconds of a busy
  // 8-thread pipeline.
  static constexpr size_t kDefaultCapacity = size_t{1} << 14;

  static Tracer& Get();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  // Records one complete event under `ctx`. `name` must outlive the tracer
  // (use a literal). Timestamps are SinceProcessStart() nanos. `span_id`
  // is the event's own id (NextSpanId()).
  void Record(const char* name, Nanos start_ns, Nanos duration_ns, uint64_t span_id,
              const TraceContext& ctx);

  // Chrome trace-event JSON of the ring's current contents, oldest first:
  // "X" complete events (with trace/span/parent/job/class args when the
  // event carries a context) plus "s"/"f" flow events stitching children
  // to parents recorded in the same dump.
  std::string ToChromeJson();

  // Decoded copy of the ring's current contents, oldest first (tests).
  std::vector<TraceEvent> Snapshot();

  // Total events ever recorded (those beyond capacity were overwritten).
  uint64_t RecordedCount() const { return head_.load(std::memory_order_relaxed); }
  // Events lost to ring wraparound (mirrored as "sand.trace.dropped").
  uint64_t DroppedCount() const { return dropped_.load(std::memory_order_relaxed); }

  size_t Capacity() const { return ring_.load(std::memory_order_acquire)->slots.size(); }

  // Swaps in a fresh ring of `slots` entries (min 1024). Events already
  // recorded are discarded; the old ring is leaked (never freed) so
  // concurrent Record calls that raced the swap stay safe. Intended for
  // startup configuration (ServiceOptions::trace_ring_slots), not steady-
  // state tuning.
  void Resize(size_t slots);

  // Empties the ring (tests / bench phase boundaries). Not linearizable
  // against concurrent Record.
  void Clear();

 private:
  // Every field atomic: slots are re-written in place as the ring wraps
  // while readers may be dumping — each field individually tears-free.
  struct Slot {
    std::atomic<const char*> name{nullptr};
    std::atomic<int64_t> start_ns{0};
    std::atomic<int64_t> duration_ns{0};
    std::atomic<uint32_t> tid{0};
    std::atomic<uint64_t> trace_id{0};
    std::atomic<uint64_t> span_id{0};
    std::atomic<uint64_t> parent_span_id{0};
    std::atomic<uint32_t> job_id{0};
    std::atomic<uint8_t> request_class{0};
  };
  struct Ring {
    explicit Ring(size_t n) : slots(n) {}
    std::vector<Slot> slots;
  };

  Tracer();

  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> head_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<Ring*> ring_;
  Counter* dropped_counter_;  // registry mirror "sand.trace.dropped"
};

// RAII span: captures the start time at construction, records on
// destruction (skipping the ring entirely when tracing is disabled).
// While open, the span is the thread's current trace parent: a context
// without an active trace gets a fresh trace id, so every top-level span
// roots its own trace and nested/submitted work joins it.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : name_(nullptr), start_(0), span_id_(0) {
    if (!Tracer::Get().enabled()) {
      return;
    }
    name_ = name;
    span_id_ = NextSpanId();
    prev_ctx_ = CurrentTraceContext();
    record_ctx_ = prev_ctx_;
    if (!record_ctx_.active()) {
      record_ctx_.trace_id = NextTraceId();
      record_ctx_.parent_span_id = 0;
    }
    TraceContext inner = record_ctx_;
    inner.parent_span_id = span_id_;
    internal::SetCurrentTraceContext(inner);
    start_ = SinceProcessStart();
  }
  ~ScopedSpan() {
    if (name_ != nullptr) {
      Tracer::Get().Record(name_, start_, SinceProcessStart() - start_, span_id_, record_ctx_);
      // Restore the context from *before* the span — not record_ctx_: a
      // root span allocated a trace id record_ctx_ carries, and restoring
      // it would leave the thread inside that trace forever after.
      internal::SetCurrentTraceContext(prev_ctx_);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  Nanos start_;
  uint64_t span_id_;
  TraceContext prev_ctx_;    // thread context at construction, restored on exit
  TraceContext record_ctx_;  // context the span records under (parent = enclosing)
};

}  // namespace obs
}  // namespace sand

#define SAND_SPAN_CONCAT_(a, b) a##b
#define SAND_SPAN_NAME_(line) SAND_SPAN_CONCAT_(sand_span_, line)
// One span covering the rest of the enclosing scope.
#define SAND_SPAN(name) ::sand::obs::ScopedSpan SAND_SPAN_NAME_(__LINE__)(name)

#endif  // SAND_OBS_TRACE_H_
