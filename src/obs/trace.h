// Always-on pipeline tracer with bounded memory (DESIGN.md §7).
//
// SAND_SPAN("decode") at the top of a scope records a complete event —
// name, start, duration, small thread id — into a fixed-capacity ring of
// atomic slots when the scope exits. Recording is lock-free: one
// fetch_add ticket plus four relaxed stores (~60 ns measured by
// bench_micro_obs), so spans stay enabled in production; once the ring
// wraps, the oldest events are overwritten.
//
// ToChromeJson() renders the ring as Chrome trace-event JSON ("X" complete
// events, timestamps in microseconds since the process anchor shared with
// SAND_LOG). Load it at chrome://tracing or ui.perfetto.dev. The dump is
// exported as the SAND view "/.sand/trace" and written by benches under
// --trace-out.
//
// Span names must be string literals (or otherwise immortal): the ring
// stores the pointer, not a copy.

#ifndef SAND_OBS_TRACE_H_
#define SAND_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/threading.h"

namespace sand {
namespace obs {

class Tracer {
 public:
  // 16Ki events x 32 B: 512 KiB resident, ~the last few seconds of a busy
  // 8-thread pipeline.
  static constexpr size_t kCapacity = size_t{1} << 14;

  static Tracer& Get();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  // Records one complete event. `name` must outlive the tracer (use a
  // literal). Timestamps are SinceProcessStart() nanos.
  void Record(const char* name, Nanos start_ns, Nanos duration_ns);

  // Chrome trace-event JSON of the ring's current contents, oldest first.
  std::string ToChromeJson();

  // Total events ever recorded (those beyond kCapacity were overwritten).
  uint64_t RecordedCount() const { return head_.load(std::memory_order_relaxed); }

  // Empties the ring (tests / bench phase boundaries). Not linearizable
  // against concurrent Record.
  void Clear();

 private:
  // Every field atomic: slots are re-written in place as the ring wraps
  // while readers may be dumping — each field individually tears-free.
  struct Slot {
    std::atomic<const char*> name{nullptr};
    std::atomic<int64_t> start_ns{0};
    std::atomic<int64_t> duration_ns{0};
    std::atomic<uint32_t> tid{0};
  };

  Tracer() : ring_(kCapacity) {}

  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> head_{0};
  std::vector<Slot> ring_;
};

// RAII span: captures the start time at construction, records on
// destruction (skipping the ring entirely when tracing is disabled).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name)
      : name_(Tracer::Get().enabled() ? name : nullptr),
        start_(name_ != nullptr ? SinceProcessStart() : 0) {}
  ~ScopedSpan() {
    if (name_ != nullptr) {
      Tracer::Get().Record(name_, start_, SinceProcessStart() - start_);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  Nanos start_;
};

}  // namespace obs
}  // namespace sand

#define SAND_SPAN_CONCAT_(a, b) a##b
#define SAND_SPAN_NAME_(line) SAND_SPAN_CONCAT_(sand_span_, line)
// One span covering the rest of the enclosing scope.
#define SAND_SPAN(name) ::sand::obs::ScopedSpan SAND_SPAN_NAME_(__LINE__)(name)

#endif  // SAND_OBS_TRACE_H_
