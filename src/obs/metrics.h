// Process-global metrics registry (DESIGN.md §7).
//
// One source of truth for runtime counters across the whole object path:
// the stores, the codec, the executor, the scheduler, and the VFS all
// publish here, and the snapshot is exported as a SAND view — reading
// "/.sand/metrics" through SandFs returns the JSON produced by
// Registry::ToJson() (tools/sand_stat pretty-prints it).
//
// Three primitives, all lock-free on the hot path:
//   Counter   - monotonic; sharded across cache lines so concurrent bumps
//               from different threads never contend (one relaxed
//               fetch_add on the caller's shard, measured < 10 ns/op by
//               bench_micro_obs)
//   Gauge     - instantaneous signed value (relaxed store)
//   Histogram - log-linear buckets (exact below 16, 4 sub-buckets per
//               power of two above: <= 12.5% relative error) with
//               p50/p90/p95/p99 extraction; used for latencies in ns
//
// Components cache the pointers Registry hands out at construction time;
// the name lookup (mutex + map) never sits on a hot path. Pointers are
// stable for the process lifetime — the registry only grows.

#ifndef SAND_OBS_METRICS_H_
#define SAND_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace sand {
namespace obs {

// Monotonically increasing event count. Sharded by SmallThreadId so the
// bump is one uncontended relaxed fetch_add; Value() folds the shards.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    shards_[ShardIndex()].value.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }
  // Not linearizable against concurrent Add; totals settle once writers
  // quiesce (bench/test usage).
  void Reset() {
    for (Shard& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  static constexpr size_t kShards = 16;
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  static size_t ShardIndex();

  std::array<Shard, kShards> shards_;
};

// Instantaneous signed value (queue depths, bytes resident).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

// Log-linear histogram. Values 0..15 land in exact buckets; above that,
// each power of two splits into 4 linear sub-buckets, bounding relative
// error at 1/8. 256 buckets cover the full uint64 range.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 16 + (64 - 4) * 4;

  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t Count() const;
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const;
  // Bucket-midpoint estimate of the q-quantile (q in [0, 1]) over all
  // recorded values; 0 when empty.
  uint64_t Quantile(double q) const;
  // Midpoint of the highest non-empty bucket; 0 when empty.
  uint64_t Max() const;
  void Reset();

  static size_t BucketIndex(uint64_t value);
  // Inclusive lower bound / midpoint of bucket `index`.
  static uint64_t BucketLowerBound(size_t index);
  static uint64_t BucketMidpoint(size_t index);

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> sum_{0};
};

// Name -> metric. Process-global; GetCounter et al. return stable pointers
// (creating the metric on first use) that callers cache.
class Registry {
 public:
  static Registry& Get();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  // Full snapshot as JSON:
  //   {"counters": {name: value, ...},
  //    "gauges": {name: value, ...},
  //    "histograms": {name: {"count":..,"sum":..,"mean":..,
  //                          "p50":..,"p90":..,"p95":..,"p99":..,"max":..}}}
  // Names are emitted in sorted order so output is stable. A non-empty
  // `prefix` restricts the dump to metrics whose name starts with it;
  // `strip_prefix` then drops the prefix from emitted names (per-job
  // views: "/.sand/jobs/<tag>/metrics" shows "reads", not
  // "sand.job.<tag>.reads").
  std::string ToJson(const std::string& prefix = "", bool strip_prefix = false);

  // Calls `fn(name, value)` for every counter and gauge (not histograms),
  // holding the registry mutex: `fn` must not call back into the registry.
  // Feeds the history recorder's periodic samples.
  void VisitNumeric(const std::function<void(const std::string&, int64_t)>& fn);

  // Zeroes every registered metric (benches measuring deltas, tests).
  // Metrics stay registered; pointers remain valid.
  void ResetAll();

 private:
  Registry() = default;

  std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace sand

#endif  // SAND_OBS_METRICS_H_
