// Per-job metric attribution (DESIGN.md §12).
//
// SAND serves many training jobs from one cache; "who caused this work"
// is the question both the scheduler and an operator debugging a slow
// epoch need answered. A job here is whatever tag the front-end hands us
// — today the task name from the view path (SandFs interns it at Open),
// tomorrow a tenant id from the socket server.
//
// JobRegistry interns tags to dense uint32 ids (0 = unattributed) that
// travel inside TraceContext.job_id; JobMetricsFor(id) returns a bundle
// of cached metric pointers named "sand.job.<tag>.<metric>" in the global
// registry, so per-job counters ride the same sharded lock-free
// primitives, appear in /.sand/metrics, and are carved out per job as
// "/.sand/jobs/<tag>/metrics" by SandFs.

#ifndef SAND_OBS_ATTRIBUTION_H_
#define SAND_OBS_ATTRIBUTION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace sand {
namespace obs {

class Counter;
class Histogram;

// The per-job metric bundle. Pointers are registry-owned and live for the
// process; callers cache the bundle pointer itself (stable after Intern).
struct JobMetrics {
  Counter* reads = nullptr;               // demand view reads served
  Counter* bytes_read = nullptr;          // bytes handed to the reader
  Counter* batches_served = nullptr;      // batch manifests completed
  Counter* cache_hits = nullptr;          // executor cache short-circuits
  Counter* decode_ns = nullptr;           // decode CPU attributed to the job
  Counter* speculative_issued = nullptr;  // prefetch units issued on its behalf
  Counter* speculative_wasted = nullptr;  // issued but evicted/invalidated unused
  Histogram* materialize_wait_ns = nullptr;  // reader-observed wait per read
};

// Tag <-> dense id intern table. Process-global, grow-only; lookups on the
// read path are one mutex acquisition at Open time, never per byte.
class JobRegistry {
 public:
  static JobRegistry& Get();

  // Returns the id for `tag`, creating it (and its metric bundle) on first
  // use. Empty tags map to 0 (unattributed).
  uint32_t Intern(const std::string& tag);

  // Tag for `id`; "-" for 0/unknown (chrome://tracing arg rendering).
  std::string NameOf(uint32_t id);

  // Metric bundle for `id`; nullptr for 0/unknown.
  JobMetrics* MetricsFor(uint32_t id);

  // All interned tags, sorted (directory listing for /.sand/jobs).
  std::vector<std::string> Tags();

 private:
  JobRegistry() = default;

  std::mutex mutex_;
  std::unordered_map<std::string, uint32_t> ids_;
  std::vector<std::string> tags_;                   // index = id - 1
  std::vector<std::unique_ptr<JobMetrics>> metrics_;  // index = id - 1
};

// Convenience: bundle for the id, nullptr when unattributed.
inline JobMetrics* JobMetricsFor(uint32_t job_id) {
  return JobRegistry::Get().MetricsFor(job_id);
}

class Gauge;

// The per-tenant metric bundle ("sand.tenant.<tag>.<metric>"). A tenant is
// a paying consumer of the shared service — one socket identity with
// quotas — where a job is one training task; a tenant typically runs many
// jobs. Carved out per tenant as "/.sand/tenants/<tag>/metrics" by SandFs.
struct TenantMetrics {
  Counter* sessions = nullptr;        // connections that authenticated as this tenant
  Counter* requests = nullptr;        // wire requests served
  Counter* rejected = nullptr;        // admission-control refusals (RESOURCE_EXHAUSTED)
  Counter* bytes_read = nullptr;      // payload bytes shipped to the tenant
  Counter* sched_jobs_run = nullptr;  // scheduler jobs attributed to the tenant
  Gauge* inflight = nullptr;          // requests currently executing
  Gauge* resident_bytes = nullptr;    // open-object bytes counted against its budget
  Histogram* materialize_wait_ns = nullptr;  // per-request service time
};

// Tenant tag <-> dense id intern table; ids travel in
// TraceContext.tenant_id. Same shape and lifetime rules as JobRegistry.
class TenantRegistry {
 public:
  static TenantRegistry& Get();

  // Returns the id for `tag`, creating it (and its metric bundle) on first
  // use. Empty tags map to 0 (no tenant).
  uint32_t Intern(const std::string& tag);

  // Tag for `id`; "-" for 0/unknown.
  std::string NameOf(uint32_t id);

  // Metric bundle for `id`; nullptr for 0/unknown.
  TenantMetrics* MetricsFor(uint32_t id);

  // All interned tags, sorted (directory listing for /.sand/tenants).
  std::vector<std::string> Tags();

 private:
  TenantRegistry() = default;

  std::mutex mutex_;
  std::unordered_map<std::string, uint32_t> ids_;
  std::vector<std::string> tags_;                      // index = id - 1
  std::vector<std::unique_ptr<TenantMetrics>> metrics_;  // index = id - 1
};

// Convenience: bundle for the id, nullptr when no tenant.
inline TenantMetrics* TenantMetricsFor(uint32_t tenant_id) {
  return TenantRegistry::Get().MetricsFor(tenant_id);
}

}  // namespace obs
}  // namespace sand

#endif  // SAND_OBS_ATTRIBUTION_H_
