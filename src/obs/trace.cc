#include "src/obs/trace.h"

#include <cstdlib>
#include <iomanip>
#include <map>
#include <sstream>

#include "src/obs/attribution.h"
#include "src/obs/metrics.h"

namespace sand {
namespace obs {

namespace {

size_t InitialCapacity() {
  const char* env = std::getenv("SAND_TRACE_RING_SLOTS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return v < 1024 ? 1024 : static_cast<size_t>(v);
    }
  }
  return Tracer::kDefaultCapacity;
}

}  // namespace

Tracer& Tracer::Get() {
  static Tracer* tracer = new Tracer();  // never destroyed: spans may outlive main
  return *tracer;
}

Tracer::Tracer()
    : ring_(new Ring(InitialCapacity())),
      dropped_counter_(Registry::Get().GetCounter("sand.trace.dropped")) {}

void Tracer::Record(const char* name, Nanos start_ns, Nanos duration_ns, uint64_t span_id,
                    const TraceContext& ctx) {
  Ring* ring = ring_.load(std::memory_order_acquire);
  const size_t capacity = ring->slots.size();
  uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  if (ticket >= capacity) {
    // The slot we claim overwrites the event recorded `capacity` tickets
    // ago; surface the loss instead of silently forgetting it.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    dropped_counter_->Add(1);
  }
  Slot& slot = ring->slots[ticket % capacity];
  slot.start_ns.store(start_ns, std::memory_order_relaxed);
  slot.duration_ns.store(duration_ns, std::memory_order_relaxed);
  slot.tid.store(SmallThreadId(), std::memory_order_relaxed);
  slot.trace_id.store(ctx.trace_id, std::memory_order_relaxed);
  slot.span_id.store(span_id, std::memory_order_relaxed);
  slot.parent_span_id.store(ctx.parent_span_id, std::memory_order_relaxed);
  slot.job_id.store(ctx.job_id, std::memory_order_relaxed);
  slot.request_class.store(static_cast<uint8_t>(ctx.request_class), std::memory_order_relaxed);
  // Name last: a dump observing the name sees plausible (if possibly
  // mixed-generation) numeric fields, never uninitialized ones.
  slot.name.store(name, std::memory_order_release);
}

std::vector<TraceEvent> Tracer::Snapshot() {
  Ring* ring = ring_.load(std::memory_order_acquire);
  const size_t capacity = ring->slots.size();
  uint64_t head = head_.load(std::memory_order_relaxed);
  uint64_t count = head < capacity ? head : capacity;
  uint64_t first = head - count;  // oldest surviving ticket
  std::vector<TraceEvent> events;
  events.reserve(count);
  for (uint64_t ticket = first; ticket < head; ++ticket) {
    const Slot& slot = ring->slots[ticket % capacity];
    const char* name = slot.name.load(std::memory_order_acquire);
    if (name == nullptr) {
      continue;  // slot claimed by a racing Record that hasn't finished
    }
    TraceEvent ev;
    ev.name = name;
    ev.start_ns = slot.start_ns.load(std::memory_order_relaxed);
    ev.duration_ns = slot.duration_ns.load(std::memory_order_relaxed);
    ev.tid = slot.tid.load(std::memory_order_relaxed);
    ev.trace_id = slot.trace_id.load(std::memory_order_relaxed);
    ev.span_id = slot.span_id.load(std::memory_order_relaxed);
    ev.parent_span_id = slot.parent_span_id.load(std::memory_order_relaxed);
    ev.job_id = slot.job_id.load(std::memory_order_relaxed);
    ev.request_class =
        static_cast<RequestClass>(slot.request_class.load(std::memory_order_relaxed));
    events.push_back(ev);
  }
  return events;
}

std::string Tracer::ToChromeJson() {
  std::vector<TraceEvent> events = Snapshot();
  std::ostringstream out;
  out << std::fixed << std::setprecision(3);  // microseconds with ns resolution
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool any = false;
  for (const TraceEvent& ev : events) {
    double ts_us = static_cast<double>(ev.start_ns) / 1e3;
    double dur_us = static_cast<double>(ev.duration_ns) / 1e3;
    out << (any ? ",\n" : "\n") << "  {\"name\": \"" << ev.name
        << "\", \"cat\": \"sand\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << ev.tid
        << ", \"ts\": " << ts_us << ", \"dur\": " << dur_us;
    if (ev.trace_id != 0) {
      out << ", \"args\": {\"trace\": " << ev.trace_id << ", \"span\": " << ev.span_id
          << ", \"parent\": " << ev.parent_span_id << ", \"job\": \""
          << JobRegistry::Get().NameOf(ev.job_id) << "\", \"class\": \""
          << RequestClassName(ev.request_class) << "\"}";
    }
    out << "}";
    any = true;
  }
  // Flow events stitch cross-thread parent->child edges: for each event
  // whose parent span is also in the dump on a *different* thread, emit a
  // "s" (flow start) at the parent and a matching "f" (flow end, binding
  // point "enclosing slice") at the child. Same-thread nesting is already
  // visible as stacking, so no arrow is drawn for it.
  std::map<uint64_t, const TraceEvent*> by_span;
  for (const TraceEvent& ev : events) {
    if (ev.span_id != 0) {
      by_span[ev.span_id] = &ev;
    }
  }
  for (const TraceEvent& ev : events) {
    if (ev.parent_span_id == 0) {
      continue;
    }
    auto it = by_span.find(ev.parent_span_id);
    if (it == by_span.end() || it->second->tid == ev.tid) {
      continue;
    }
    const TraceEvent& parent = *it->second;
    // Anchor the flow start inside the parent slice at the child's launch
    // time when it falls within the parent, else at the parent's start.
    int64_t s_ns = ev.start_ns;
    if (s_ns < parent.start_ns || s_ns > parent.start_ns + parent.duration_ns) {
      s_ns = parent.start_ns;
    }
    double s_us = static_cast<double>(s_ns) / 1e3;
    double f_us = static_cast<double>(ev.start_ns) / 1e3;
    out << (any ? ",\n" : "\n") << "  {\"name\": \"causal\", \"cat\": \"sand\", \"ph\": \"s\", "
        << "\"id\": " << ev.span_id << ", \"pid\": 1, \"tid\": " << parent.tid
        << ", \"ts\": " << s_us << "},\n"
        << "  {\"name\": \"causal\", \"cat\": \"sand\", \"ph\": \"f\", \"bp\": \"e\", "
        << "\"id\": " << ev.span_id << ", \"pid\": 1, \"tid\": " << ev.tid
        << ", \"ts\": " << f_us << "}";
    any = true;
  }
  out << (any ? "\n" : "") << "]}\n";
  return out.str();
}

void Tracer::Resize(size_t slots) {
  if (slots < 1024) {
    slots = 1024;
  }
  Ring* fresh = new Ring(slots);
  // The old ring is leaked on purpose: a racing Record may still hold its
  // pointer, and rings are swapped O(1) times per process.
  ring_.store(fresh, std::memory_order_release);
  head_.store(0, std::memory_order_relaxed);
}

void Tracer::Clear() {
  Ring* ring = ring_.load(std::memory_order_acquire);
  for (Slot& slot : ring->slots) {
    slot.name.store(nullptr, std::memory_order_relaxed);
  }
  head_.store(0, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace sand
