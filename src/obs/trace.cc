#include "src/obs/trace.h"

#include <iomanip>
#include <sstream>

namespace sand {
namespace obs {

Tracer& Tracer::Get() {
  static Tracer* tracer = new Tracer();  // never destroyed: spans may outlive main
  return *tracer;
}

void Tracer::Record(const char* name, Nanos start_ns, Nanos duration_ns) {
  uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = ring_[ticket % kCapacity];
  slot.start_ns.store(start_ns, std::memory_order_relaxed);
  slot.duration_ns.store(duration_ns, std::memory_order_relaxed);
  slot.tid.store(SmallThreadId(), std::memory_order_relaxed);
  // Name last: a dump observing the name sees plausible (if possibly
  // mixed-generation) numeric fields, never uninitialized ones.
  slot.name.store(name, std::memory_order_release);
}

std::string Tracer::ToChromeJson() {
  uint64_t head = head_.load(std::memory_order_relaxed);
  uint64_t count = head < kCapacity ? head : kCapacity;
  uint64_t first = head - count;  // oldest surviving ticket
  std::ostringstream out;
  out << std::fixed << std::setprecision(3);  // microseconds with ns resolution
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool any = false;
  for (uint64_t ticket = first; ticket < head; ++ticket) {
    const Slot& slot = ring_[ticket % kCapacity];
    const char* name = slot.name.load(std::memory_order_acquire);
    if (name == nullptr) {
      continue;  // slot claimed by a racing Record that hasn't finished
    }
    double ts_us = static_cast<double>(slot.start_ns.load(std::memory_order_relaxed)) / 1e3;
    double dur_us = static_cast<double>(slot.duration_ns.load(std::memory_order_relaxed)) / 1e3;
    out << (any ? ",\n" : "\n") << "  {\"name\": \"" << name
        << "\", \"cat\": \"sand\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
        << slot.tid.load(std::memory_order_relaxed) << ", \"ts\": " << ts_us
        << ", \"dur\": " << dur_us << "}";
    any = true;
  }
  out << (any ? "\n" : "") << "]}\n";
  return out.str();
}

void Tracer::Clear() {
  for (Slot& slot : ring_) {
    slot.name.store(nullptr, std::memory_order_relaxed);
  }
  head_.store(0, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace sand
