#include "src/obs/history.h"

#include <chrono>
#include <sstream>

#include "src/common/threading.h"
#include "src/obs/metrics.h"

namespace sand {
namespace obs {

HistoryRecorder& HistoryRecorder::Get() {
  static HistoryRecorder* recorder = new HistoryRecorder();  // never destroyed
  return *recorder;
}

void HistoryRecorder::Start(const Options& options) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (running_) {
    return;
  }
  options_ = options;
  if (options_.capacity == 0) {
    options_.capacity = 1;
  }
  if (options_.interval_ms <= 0) {
    return;  // manual SampleNow() only
  }
  running_ = true;
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> tick_lock(mutex_);
    while (running_) {
      SampleLocked();
      cv_.wait_for(tick_lock, std::chrono::milliseconds(options_.interval_ms),
                   [this] { return !running_; });
    }
  });
}

void HistoryRecorder::Stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) {
      return;
    }
    running_ = false;
    to_join = std::move(thread_);
  }
  cv_.notify_all();
  if (to_join.joinable()) {
    to_join.join();
  }
}

uint64_t HistoryRecorder::AddSampler(std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t handle = next_sampler_id_++;
  samplers_.emplace_back(handle, std::move(fn));
  return handle;
}

void HistoryRecorder::RemoveSampler(uint64_t handle) {
  // The tick holds mutex_ while running samplers, so once we own it the
  // callback is guaranteed not to be mid-flight.
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = samplers_.begin(); it != samplers_.end(); ++it) {
    if (it->first == handle) {
      samplers_.erase(it);
      return;
    }
  }
}

void HistoryRecorder::SampleNow() {
  std::lock_guard<std::mutex> lock(mutex_);
  SampleLocked();
}

void HistoryRecorder::SampleLocked() {
  for (auto& [handle, fn] : samplers_) {
    fn();
  }
  Sample sample;
  sample.t_ms = SinceProcessStart() / 1'000'000;
  sample.values.resize(names_.size(), 0);
  Registry::Get().VisitNumeric([this, &sample](const std::string& name, int64_t value) {
    auto it = name_index_.find(name);
    size_t index;
    if (it == name_index_.end()) {
      index = names_.size();
      names_.push_back(name);
      name_index_.emplace(name, index);
      sample.values.resize(names_.size(), 0);
    } else {
      index = it->second;
    }
    sample.values[index] = value;
  });
  samples_.push_back(std::move(sample));
  size_t capacity = options_.capacity == 0 ? 1200 : options_.capacity;
  while (samples_.size() > capacity) {
    samples_.pop_front();
  }
}

std::string HistoryRecorder::ToJson() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "{\n  \"interval_ms\": " << options_.interval_ms << ",\n  \"names\": [";
  for (size_t i = 0; i < names_.size(); ++i) {
    out << (i == 0 ? "" : ", ") << "\"" << names_[i] << "\"";
  }
  out << "],\n  \"samples\": [";
  bool first = true;
  for (const Sample& sample : samples_) {
    out << (first ? "\n" : ",\n") << "    {\"t_ms\": " << sample.t_ms << ", \"v\": [";
    for (size_t i = 0; i < names_.size(); ++i) {
      // Older samples predate later-registered metrics: render 0.
      int64_t v = i < sample.values.size() ? sample.values[i] : 0;
      out << (i == 0 ? "" : ", ") << v;
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "]\n}\n";
  return out.str();
}

void HistoryRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  samples_.clear();
  names_.clear();
  name_index_.clear();
}

size_t HistoryRecorder::SampleCount() {
  std::lock_guard<std::mutex> lock(mutex_);
  return samples_.size();
}

}  // namespace obs
}  // namespace sand
