// Health / SLO monitor (DESIGN.md §12).
//
// Rolls the raw registry up into one operator-facing verdict: is this
// SAND instance serving within its latency budget, with its disks
// healthy, its pool keeping up, and its speculation paying for itself?
// Exported as the SAND view "/.sand/health":
//
//   {"status": "ok" | "degraded" | "unhealthy",
//    "violations": [{"check": "p99_materialize_wait",
//                    "value": .., "threshold": ..}, ...],
//    "checks_evaluated": 4}
//
// Zero violations -> "ok", exactly one -> "degraded", two or more ->
// "unhealthy". Each violating check also bumps a "sand.health.<check>"
// counter once per evaluation, so history/metrics show *when* an SLO was
// out of budget even after the condition clears.
//
// The monitor is deliberately decoupled from the components it watches:
// it reads metrics back out of the Registry by name (the names are the
// contract), so it needs no references into the service, pool, or store —
// and evaluates whatever subset exists, skipping checks whose inputs have
// not been registered or have too few samples to judge.
//
// Evaluation runs on demand (every /.sand/health open) and on every
// history tick (via the sampler SandService registers).

#ifndef SAND_OBS_HEALTH_H_
#define SAND_OBS_HEALTH_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace sand {
namespace obs {

// Budgets the monitor judges against. Default-constructed thresholds are
// permissive enough that an idle or lightly-loaded instance reports "ok".
struct HealthThresholds {
  // p99 of "sand.fs.materialize_wait_ns" must stay below this (0 disables).
  uint64_t p99_materialize_wait_ns = 500'000'000;  // 500 ms
  // Checked only once the histogram has this many observations.
  uint64_t min_wait_samples = 32;

  // "sand.pool.async.pending" / "sand.pool.async.capacity" must stay below
  // this fraction (<= 0 disables). 1.0 = a completely full queue.
  double pool_saturation = 0.95;

  // "sand.prefetch.wasted" / "sand.prefetch.issued" must stay below this
  // fraction (< 0 disables), judged once `min_speculative_issued` units
  // have been issued.
  double speculative_waste_ratio = 0.5;
  uint64_t min_speculative_issued = 16;

  // Whether a set "sand.store.disk.degraded" gauge is a violation.
  bool fail_on_disk_degraded = true;
};

struct HealthViolation {
  std::string check;  // e.g. "p99_materialize_wait"
  double value = 0;
  double threshold = 0;
};

struct HealthVerdict {
  std::string status;  // "ok" | "degraded" | "unhealthy"
  std::vector<HealthViolation> violations;
  int checks_evaluated = 0;
};

class HealthMonitor {
 public:
  static HealthMonitor& Get();

  void SetThresholds(const HealthThresholds& thresholds);
  HealthThresholds GetThresholds();

  // Runs every enabled check against the registry's current values and
  // bumps "sand.health.<check>" per violation.
  HealthVerdict Evaluate();

  // Evaluate() rendered as JSON (the /.sand/health payload).
  std::string EvaluateToJson();

 private:
  HealthMonitor() = default;

  std::mutex mutex_;
  HealthThresholds thresholds_;
};

}  // namespace obs
}  // namespace sand

#endif  // SAND_OBS_HEALTH_H_
