#include "src/obs/health.h"

#include <sstream>

#include "src/obs/metrics.h"

namespace sand {
namespace obs {

HealthMonitor& HealthMonitor::Get() {
  static HealthMonitor* monitor = new HealthMonitor();  // never destroyed
  return *monitor;
}

void HealthMonitor::SetThresholds(const HealthThresholds& thresholds) {
  std::lock_guard<std::mutex> lock(mutex_);
  thresholds_ = thresholds;
}

HealthThresholds HealthMonitor::GetThresholds() {
  std::lock_guard<std::mutex> lock(mutex_);
  return thresholds_;
}

HealthVerdict HealthMonitor::Evaluate() {
  HealthThresholds t = GetThresholds();
  Registry& reg = Registry::Get();
  HealthVerdict verdict;

  auto violate = [&verdict, &reg](const char* check, double value, double threshold) {
    verdict.violations.push_back({check, value, threshold});
    reg.GetCounter(std::string("sand.health.") + check)->Add(1);
  };

  if (t.p99_materialize_wait_ns > 0) {
    // GetHistogram registers an empty histogram if none exists yet; the
    // sample-count guard keeps that from producing a verdict.
    Histogram* wait = reg.GetHistogram("sand.fs.materialize_wait_ns");
    if (wait->Count() >= t.min_wait_samples) {
      ++verdict.checks_evaluated;
      uint64_t p99 = wait->Quantile(0.99);
      if (p99 > t.p99_materialize_wait_ns) {
        violate("p99_materialize_wait", static_cast<double>(p99),
                static_cast<double>(t.p99_materialize_wait_ns));
      }
    }
  }

  if (t.fail_on_disk_degraded) {
    ++verdict.checks_evaluated;
    int64_t degraded = reg.GetGauge("sand.store.disk.degraded")->Value();
    if (degraded != 0) {
      violate("disk_degraded", static_cast<double>(degraded), 0.0);
    }
  }

  if (t.pool_saturation > 0) {
    int64_t capacity = reg.GetGauge("sand.pool.async.capacity")->Value();
    if (capacity > 0) {
      ++verdict.checks_evaluated;
      int64_t pending = reg.GetGauge("sand.pool.async.pending")->Value();
      double saturation = static_cast<double>(pending) / static_cast<double>(capacity);
      if (saturation > t.pool_saturation) {
        violate("pool_saturation", saturation, t.pool_saturation);
      }
    }
  }

  if (t.speculative_waste_ratio >= 0) {
    uint64_t issued = reg.GetCounter("sand.prefetch.issued")->Value();
    if (issued >= t.min_speculative_issued) {
      ++verdict.checks_evaluated;
      uint64_t wasted = reg.GetCounter("sand.prefetch.wasted")->Value();
      double ratio = static_cast<double>(wasted) / static_cast<double>(issued);
      if (ratio > t.speculative_waste_ratio) {
        violate("speculative_waste", ratio, t.speculative_waste_ratio);
      }
    }
  }

  verdict.status = verdict.violations.empty()
                       ? "ok"
                       : (verdict.violations.size() == 1 ? "degraded" : "unhealthy");
  return verdict;
}

std::string HealthMonitor::EvaluateToJson() {
  HealthVerdict verdict = Evaluate();
  std::ostringstream out;
  out << "{\n  \"status\": \"" << verdict.status << "\",\n  \"checks_evaluated\": "
      << verdict.checks_evaluated << ",\n  \"violations\": [";
  bool first = true;
  for (const HealthViolation& v : verdict.violations) {
    out << (first ? "\n" : ",\n") << "    {\"check\": \"" << v.check
        << "\", \"value\": " << v.value << ", \"threshold\": " << v.threshold << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "]\n}\n";
  return out.str();
}

}  // namespace obs
}  // namespace sand
