// Ring-buffered time-series recorder (DESIGN.md §12).
//
// /.sand/metrics answers "what is the total now"; it cannot answer "when
// did the pool saturate" or "was the hit rate falling before the stall".
// HistoryRecorder fills that gap: a background thread samples every
// counter and gauge in the Registry (plus any registered sampler-published
// gauges) at a fixed cadence into a bounded ring, exported as the SAND
// view "/.sand/history".
//
// Default cadence 200 ms with 1200 samples resident = the last 4 minutes,
// a few hundred KiB. The dump format keeps samples compact by interning
// metric names once:
//
//   {"interval_ms": 200,
//    "names": ["sand.cache.hits", ...],
//    "samples": [{"t_ms": 1234, "v": [17, ...]}, ...]}
//
// `v[i]` is the value of `names[i]` at that tick; metrics registered after
// a sample was taken render as 0 in older rows (columns only grow).
//
// Samplers are callbacks run at the top of each tick *before* the registry
// sweep — components use them to publish instantaneous state that is not
// naturally a metric write (pool queue depths, cache residency). They also
// drive the health monitor's periodic evaluation. AddSampler/RemoveSampler
// hold the recorder mutex during ticks, so removal is safe against a
// concurrent tick (never returns while the callback runs).

#ifndef SAND_OBS_HISTORY_H_
#define SAND_OBS_HISTORY_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace sand {
namespace obs {

class HistoryRecorder {
 public:
  struct Options {
    int64_t interval_ms = 200;  // sampling cadence
    size_t capacity = 1200;     // samples resident (1200 x 200 ms = 4 min)
  };

  static HistoryRecorder& Get();

  // Starts the sampling thread (idempotent; restarts with new options if
  // stopped). interval_ms <= 0 disables periodic sampling; SampleNow()
  // still works for deterministic tests.
  void Start(const Options& options);
  // Stops and joins the sampling thread. Recorded history is retained.
  void Stop();

  // Registers `fn` to run at the top of every tick; returns a handle for
  // RemoveSampler. The callback must not call back into the recorder.
  uint64_t AddSampler(std::function<void()> fn);
  // Blocks until no tick is running the callback, then removes it.
  void RemoveSampler(uint64_t handle);

  // Takes one sample synchronously (tests, and the final flush in Stop).
  void SampleNow();

  // The ring as JSON (shape documented above). Safe concurrent with ticks.
  std::string ToJson();

  // Drops recorded samples and the interned name table (tests).
  void Clear();

  size_t SampleCount();

 private:
  struct Sample {
    int64_t t_ms = 0;
    std::vector<int64_t> values;  // indexed like names_
  };

  HistoryRecorder() = default;

  void SampleLocked();

  std::mutex mutex_;
  std::condition_variable cv_;  // wakes the thread for prompt Stop
  Options options_;
  bool running_ = false;
  std::thread thread_;

  std::vector<std::string> names_;  // interned column order, grow-only
  std::unordered_map<std::string, size_t> name_index_;
  std::deque<Sample> samples_;

  uint64_t next_sampler_id_ = 1;
  std::vector<std::pair<uint64_t, std::function<void()>>> samplers_;
};

}  // namespace obs
}  // namespace sand

#endif  // SAND_OBS_HISTORY_H_
