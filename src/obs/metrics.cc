#include "src/obs/metrics.h"

#include <bit>
#include <cmath>
#include <sstream>

#include "src/common/threading.h"

namespace sand {
namespace obs {

size_t Counter::ShardIndex() { return SmallThreadId() % kShards; }

size_t Histogram::BucketIndex(uint64_t value) {
  if (value < 16) {
    return static_cast<size_t>(value);
  }
  int msb = 63 - std::countl_zero(value);  // >= 4 here
  size_t sub = static_cast<size_t>((value >> (msb - 2)) & 3);
  return 16 + static_cast<size_t>(msb - 4) * 4 + sub;
}

uint64_t Histogram::BucketLowerBound(size_t index) {
  if (index < 16) {
    return index;
  }
  size_t octave = 4 + (index - 16) / 4;
  size_t sub = (index - 16) % 4;
  return (uint64_t{1} << octave) + (static_cast<uint64_t>(sub) << (octave - 2));
}

uint64_t Histogram::BucketMidpoint(size_t index) {
  if (index < 16) {
    return index;
  }
  size_t octave = 4 + (index - 16) / 4;
  uint64_t width = uint64_t{1} << (octave - 2);
  return BucketLowerBound(index) + width / 2;
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const auto& bucket : buckets_) {
    total += bucket.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Mean() const {
  uint64_t count = Count();
  return count == 0 ? 0.0 : static_cast<double>(Sum()) / static_cast<double>(count);
}

uint64_t Histogram::Quantile(double q) const {
  uint64_t count = Count();
  if (count == 0) {
    return 0;
  }
  q = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
  // Rank of the target value (1-based), nearest-rank definition.
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(count)));
  if (rank == 0) {
    rank = 1;
  }
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) {
      return BucketMidpoint(i);
    }
  }
  return BucketMidpoint(kNumBuckets - 1);
}

uint64_t Histogram::Max() const {
  for (size_t i = kNumBuckets; i > 0; --i) {
    if (buckets_[i - 1].load(std::memory_order_relaxed) != 0) {
      return BucketMidpoint(i - 1);
    }
  }
  return 0;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  sum_.store(0, std::memory_order_relaxed);
}

Registry& Registry::Get() {
  static Registry* registry = new Registry();  // never destroyed: callers cache pointers
  return *registry;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return slot.get();
}

std::string Registry::ToJson(const std::string& prefix, bool strip_prefix) {
  auto matches = [&prefix](const std::string& name) {
    return prefix.empty() || name.rfind(prefix, 0) == 0;
  };
  auto emitted = [&](const std::string& name) {
    return strip_prefix ? name.substr(prefix.size()) : name;
  };
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!matches(name)) {
      continue;
    }
    out << (first ? "\n" : ",\n") << "    \"" << emitted(name) << "\": " << counter->Value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!matches(name)) {
      continue;
    }
    out << (first ? "\n" : ",\n") << "    \"" << emitted(name) << "\": " << gauge->Value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!matches(name)) {
      continue;
    }
    out << (first ? "\n" : ",\n") << "    \"" << emitted(name) << "\": {"
        << "\"count\": " << histogram->Count() << ", \"sum\": " << histogram->Sum()
        << ", \"mean\": " << histogram->Mean() << ", \"p50\": " << histogram->Quantile(0.5)
        << ", \"p90\": " << histogram->Quantile(0.9) << ", \"p95\": " << histogram->Quantile(0.95)
        << ", \"p99\": " << histogram->Quantile(0.99) << ", \"max\": " << histogram->Max() << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

void Registry::VisitNumeric(const std::function<void(const std::string&, int64_t)>& fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    fn(name, static_cast<int64_t>(counter->Value()));
  }
  for (const auto& [name, gauge] : gauges_) {
    fn(name, gauge->Value());
  }
}

void Registry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->Reset();
  }
}

}  // namespace obs
}  // namespace sand
