#include "src/obs/attribution.h"

#include <algorithm>

#include "src/obs/metrics.h"

namespace sand {
namespace obs {

JobRegistry& JobRegistry::Get() {
  static JobRegistry* registry = new JobRegistry();  // never destroyed
  return *registry;
}

uint32_t JobRegistry::Intern(const std::string& tag) {
  if (tag.empty()) {
    return 0;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = ids_.find(tag);
  if (it != ids_.end()) {
    return it->second;
  }
  uint32_t id = static_cast<uint32_t>(tags_.size()) + 1;
  tags_.push_back(tag);

  auto bundle = std::make_unique<JobMetrics>();
  Registry& reg = Registry::Get();
  const std::string prefix = "sand.job." + tag + ".";
  bundle->reads = reg.GetCounter(prefix + "reads");
  bundle->bytes_read = reg.GetCounter(prefix + "bytes_read");
  bundle->batches_served = reg.GetCounter(prefix + "batches_served");
  bundle->cache_hits = reg.GetCounter(prefix + "cache_hits");
  bundle->decode_ns = reg.GetCounter(prefix + "decode_ns");
  bundle->speculative_issued = reg.GetCounter(prefix + "speculative_issued");
  bundle->speculative_wasted = reg.GetCounter(prefix + "speculative_wasted");
  bundle->materialize_wait_ns = reg.GetHistogram(prefix + "materialize_wait_ns");
  metrics_.push_back(std::move(bundle));

  ids_.emplace(tag, id);
  return id;
}

std::string JobRegistry::NameOf(uint32_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id == 0 || id > tags_.size()) {
    return "-";
  }
  return tags_[id - 1];
}

JobMetrics* JobRegistry::MetricsFor(uint32_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id == 0 || id > metrics_.size()) {
    return nullptr;
  }
  return metrics_[id - 1].get();
}

std::vector<std::string> JobRegistry::Tags() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> tags = tags_;
  std::sort(tags.begin(), tags.end());
  return tags;
}

TenantRegistry& TenantRegistry::Get() {
  static TenantRegistry* registry = new TenantRegistry();  // never destroyed
  return *registry;
}

uint32_t TenantRegistry::Intern(const std::string& tag) {
  if (tag.empty()) {
    return 0;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = ids_.find(tag);
  if (it != ids_.end()) {
    return it->second;
  }
  uint32_t id = static_cast<uint32_t>(tags_.size()) + 1;
  tags_.push_back(tag);

  auto bundle = std::make_unique<TenantMetrics>();
  Registry& reg = Registry::Get();
  const std::string prefix = "sand.tenant." + tag + ".";
  bundle->sessions = reg.GetCounter(prefix + "sessions");
  bundle->requests = reg.GetCounter(prefix + "requests");
  bundle->rejected = reg.GetCounter(prefix + "rejected");
  bundle->bytes_read = reg.GetCounter(prefix + "bytes_read");
  bundle->sched_jobs_run = reg.GetCounter(prefix + "sched_jobs_run");
  bundle->inflight = reg.GetGauge(prefix + "inflight");
  bundle->resident_bytes = reg.GetGauge(prefix + "resident_bytes");
  bundle->materialize_wait_ns = reg.GetHistogram(prefix + "materialize_wait_ns");
  metrics_.push_back(std::move(bundle));

  ids_.emplace(tag, id);
  return id;
}

std::string TenantRegistry::NameOf(uint32_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id == 0 || id > tags_.size()) {
    return "-";
  }
  return tags_[id - 1];
}

TenantMetrics* TenantRegistry::MetricsFor(uint32_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id == 0 || id > metrics_.size()) {
    return nullptr;
  }
  return metrics_[id - 1].get();
}

std::vector<std::string> TenantRegistry::Tags() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> tags = tags_;
  std::sort(tags.begin(), tags.end());
  return tags;
}

}  // namespace obs
}  // namespace sand
