// A small trainable model.
//
// The Fig. 20 experiment needs a real learner to show that SAND's
// coordinated randomization does not change convergence. This MLP
// regresses each video's synthetic label (its base brightness) from
// region-mean pixel features of a clip, trained with plain SGD on MSE.

#ifndef SAND_WORKLOADS_MLP_H_
#define SAND_WORKLOADS_MLP_H_

#include <span>
#include <vector>

#include "src/common/rng.h"
#include "src/tensor/frame.h"

namespace sand {

// Fixed-length feature vector of a clip: per-channel means over a 2x2
// spatial grid, averaged across the clip's frames, scaled to [0, 1].
std::vector<double> ClipFeatures(const Clip& clip);
constexpr int kClipFeatureDim = 12;  // 2*2 regions x 3 channels

class MlpRegressor {
 public:
  MlpRegressor(int in_features, int hidden, uint64_t seed);

  double Predict(std::span<const double> features) const;

  // One SGD step over the batch; returns the batch MSE loss (pre-update).
  double TrainBatch(std::span<const std::vector<double>> features,
                    std::span<const double> labels, double learning_rate);

 private:
  int in_features_;
  int hidden_;
  // Layer 1: hidden x in (+bias); layer 2: 1 x hidden (+bias).
  std::vector<double> w1_;
  std::vector<double> b1_;
  std::vector<double> w2_;
  double b2_;
};

}  // namespace sand

#endif  // SAND_WORKLOADS_MLP_H_
