#include "src/workloads/calibrate.h"

#include "src/codec/video_codec.h"
#include "src/common/clock.h"
#include "src/common/rng.h"
#include "src/compress/lossless.h"
#include "src/tensor/image_ops.h"
#include "src/workloads/synthetic.h"

namespace sand {
namespace {

// Wall time of `fn` repeated `reps` times, divided by reps.
template <typename Fn>
Nanos TimeOf(int reps, Fn&& fn) {
  Stopwatch watch;
  for (int i = 0; i < reps; ++i) {
    fn();
  }
  return watch.Elapsed() / reps;
}

}  // namespace

Result<CostModel> CalibrateCostModel(const CalibrationOptions& options) {
  const int h = options.probe_height;
  const int w = options.probe_width;
  const double pixels = static_cast<double>(h) * w * 3;
  CostModel model;

  // Probe video.
  VideoEncoderOptions encoder_options;
  encoder_options.gop_size = options.gop_size;
  VideoEncoder encoder(h, w, 3, encoder_options);
  for (int64_t t = 0; t < options.probe_frames; ++t) {
    SAND_RETURN_IF_ERROR(encoder.AddFrame(SynthesizeFrame(options.seed, t, h, w, 3)));
  }
  SAND_ASSIGN_OR_RETURN(std::vector<uint8_t> container, encoder.Finish());

  // Decode: sequential sweep cost per frame (what the chunk sweep pays).
  Nanos decode_total = TimeOf(options.repetitions, [&] {
    auto decoder = VideoDecoder::Open(container);
    for (int64_t t = 0; t < options.probe_frames; ++t) {
      (void)decoder->DecodeFrame(t);
    }
  });
  model.decode_ns_per_pixel =
      static_cast<double>(decode_total) / options.probe_frames / pixels;

  Frame probe = SynthesizeFrame(options.seed, 3, h, w, 3);
  const int reps = options.repetitions * 4;

  Nanos resize_ns = TimeOf(reps, [&] { (void)Resize(probe, h * 3 / 4, w * 3 / 4); });
  model.resize_ns_per_pixel =
      static_cast<double>(resize_ns) / (pixels * 9.0 / 16.0);

  Nanos crop_ns = TimeOf(reps, [&] { (void)Crop(probe, 4, 4, h / 2, w / 2); });
  model.crop_ns_per_pixel = static_cast<double>(crop_ns) / (pixels / 4.0);

  Nanos flip_ns = TimeOf(reps, [&] { (void)FlipHorizontal(probe); });
  model.flip_ns_per_pixel = static_cast<double>(flip_ns) / pixels;

  Rng rng(options.seed);
  Nanos jitter_ns = TimeOf(reps, [&] { (void)ColorJitter(probe, rng, 20, 0.2); });
  model.jitter_ns_per_pixel = static_cast<double>(jitter_ns) / pixels;

  Nanos blur_ns = TimeOf(options.repetitions, [&] { (void)BoxBlur(probe, 3); });
  model.blur_ns_per_pixel = static_cast<double>(blur_ns) / pixels / 3.0;

  Nanos rotate_ns = TimeOf(reps, [&] { (void)Rotate90(probe); });
  model.rotate_ns_per_pixel = static_cast<double>(rotate_ns) / pixels;

  Nanos invert_ns = TimeOf(reps, [&] { (void)Invert(probe); });
  model.invert_ns_per_pixel = static_cast<double>(invert_ns) / pixels;

  // Cache codec: cost per raw byte and the measured compression ratio.
  SAND_ASSIGN_OR_RETURN(std::vector<uint8_t> compressed, CompressFrame(probe));
  Nanos compress_ns = TimeOf(options.repetitions, [&] { (void)CompressFrame(probe); });
  model.compress_ns_per_byte = static_cast<double>(compress_ns) / pixels;
  model.cache_compress_ratio =
      static_cast<double>(probe.size_bytes()) / static_cast<double>(compressed.size());
  return model;
}

}  // namespace sand
