// Synthetic video dataset generation.
//
// Stands in for Kinetics-400 / HD-VILA / YouTube-1080p. Videos are
// procedurally generated (drifting gradient background + moving textured
// boxes + mild noise, all per-video seeded) so that:
//   - content is temporally smooth -> P-frame deltas compress like real
//     video, giving the codec its GOP-dependent cost profile
//   - every video is distinct and reconstructible from its seed
//   - per-video labels exist (a deterministic function of the seed) for
//     the trainable-model experiment (Fig. 20)

#ifndef SAND_WORKLOADS_SYNTHETIC_H_
#define SAND_WORKLOADS_SYNTHETIC_H_

#include <memory>
#include <string>

#include "src/common/result.h"
#include "src/graph/dataset_meta.h"
#include "src/storage/object_store.h"
#include "src/tensor/frame.h"

namespace sand {

struct SyntheticDatasetOptions {
  std::string path = "/dataset/train";  // key prefix inside the store
  int num_videos = 16;
  int frames_per_video = 48;
  int height = 64;
  int width = 96;
  int channels = 3;
  int gop_size = 8;
  uint64_t seed = 7;
};

// One procedurally generated frame of video `video_seed` at time t.
Frame SynthesizeFrame(uint64_t video_seed, int64_t t, int height, int width, int channels);

// The ground-truth regression label of a video (in [0, 1]), a smooth
// function of its seed. Learnable from pixels: it controls the video's
// base brightness.
double SyntheticLabel(uint64_t video_seed);

// Seed of the i-th video of a dataset.
uint64_t VideoSeed(uint64_t dataset_seed, int video_index);

// Generates, encodes, and stores all videos under
// "{path}/{name}.svc"; returns the dataset metadata the planner consumes.
Result<DatasetMeta> BuildSyntheticDataset(ObjectStore& store,
                                          const SyntheticDatasetOptions& options);

// Appends one more procedurally generated video (the next index after
// meta.video_names) to the store and to `meta`. Streaming / online-learning
// scenarios use this to grow the dataset between chunks.
Status AppendSyntheticVideo(ObjectStore& store, const SyntheticDatasetOptions& options,
                            DatasetMeta& meta);

}  // namespace sand

#endif  // SAND_WORKLOADS_SYNTHETIC_H_
