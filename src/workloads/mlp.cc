#include "src/workloads/mlp.h"

#include <cassert>
#include <cmath>

namespace sand {

std::vector<double> ClipFeatures(const Clip& clip) {
  std::vector<double> features(kClipFeatureDim, 0.0);
  if (clip.frames.empty()) {
    return features;
  }
  for (const Frame& frame : clip.frames) {
    const int half_h = std::max(frame.height() / 2, 1);
    const int half_w = std::max(frame.width() / 2, 1);
    const int channels = std::min(frame.channels(), 3);
    for (int region = 0; region < 4; ++region) {
      int y0 = (region / 2) * half_h;
      int x0 = (region % 2) * half_w;
      int y1 = std::min(y0 + half_h, frame.height());
      int x1 = std::min(x0 + half_w, frame.width());
      for (int c = 0; c < channels; ++c) {
        double sum = 0;
        int count = 0;
        for (int y = y0; y < y1; ++y) {
          for (int x = x0; x < x1; ++x) {
            sum += frame.At(y, x, c);
            ++count;
          }
        }
        features[static_cast<size_t>(region * 3 + c)] +=
            count > 0 ? sum / count / 255.0 : 0.0;
      }
    }
  }
  for (double& f : features) {
    f /= static_cast<double>(clip.frames.size());
  }
  return features;
}

MlpRegressor::MlpRegressor(int in_features, int hidden, uint64_t seed)
    : in_features_(in_features), hidden_(hidden) {
  Rng rng(seed);
  double scale1 = 1.0 / std::sqrt(static_cast<double>(in_features));
  double scale2 = 1.0 / std::sqrt(static_cast<double>(hidden));
  w1_.resize(static_cast<size_t>(hidden) * in_features);
  for (double& w : w1_) {
    w = rng.NextGaussian() * scale1;
  }
  b1_.assign(static_cast<size_t>(hidden), 0.0);
  w2_.resize(static_cast<size_t>(hidden));
  for (double& w : w2_) {
    w = rng.NextGaussian() * scale2;
  }
  b2_ = 0.0;
}

double MlpRegressor::Predict(std::span<const double> features) const {
  assert(static_cast<int>(features.size()) == in_features_);
  double out = b2_;
  for (int h = 0; h < hidden_; ++h) {
    double z = b1_[static_cast<size_t>(h)];
    for (int i = 0; i < in_features_; ++i) {
      z += w1_[static_cast<size_t>(h) * in_features_ + i] * features[static_cast<size_t>(i)];
    }
    out += w2_[static_cast<size_t>(h)] * std::tanh(z);
  }
  return out;
}

double MlpRegressor::TrainBatch(std::span<const std::vector<double>> features,
                                std::span<const double> labels, double learning_rate) {
  assert(features.size() == labels.size());
  if (features.empty()) {
    return 0.0;
  }
  const size_t n = features.size();
  std::vector<double> grad_w1(w1_.size(), 0.0);
  std::vector<double> grad_b1(b1_.size(), 0.0);
  std::vector<double> grad_w2(w2_.size(), 0.0);
  double grad_b2 = 0.0;
  double loss = 0.0;

  std::vector<double> hidden_act(static_cast<size_t>(hidden_));
  for (size_t s = 0; s < n; ++s) {
    const std::vector<double>& x = features[s];
    double out = b2_;
    for (int h = 0; h < hidden_; ++h) {
      double z = b1_[static_cast<size_t>(h)];
      for (int i = 0; i < in_features_; ++i) {
        z += w1_[static_cast<size_t>(h) * in_features_ + i] * x[static_cast<size_t>(i)];
      }
      hidden_act[static_cast<size_t>(h)] = std::tanh(z);
      out += w2_[static_cast<size_t>(h)] * hidden_act[static_cast<size_t>(h)];
    }
    double err = out - labels[s];
    loss += err * err;
    grad_b2 += 2.0 * err;
    for (int h = 0; h < hidden_; ++h) {
      double a = hidden_act[static_cast<size_t>(h)];
      grad_w2[static_cast<size_t>(h)] += 2.0 * err * a;
      double dz = 2.0 * err * w2_[static_cast<size_t>(h)] * (1.0 - a * a);
      grad_b1[static_cast<size_t>(h)] += dz;
      for (int i = 0; i < in_features_; ++i) {
        grad_w1[static_cast<size_t>(h) * in_features_ + i] += dz * x[static_cast<size_t>(i)];
      }
    }
  }
  double inv_n = 1.0 / static_cast<double>(n);
  for (size_t i = 0; i < w1_.size(); ++i) {
    w1_[i] -= learning_rate * grad_w1[i] * inv_n;
  }
  for (size_t i = 0; i < b1_.size(); ++i) {
    b1_[i] -= learning_rate * grad_b1[i] * inv_n;
  }
  for (size_t i = 0; i < w2_.size(); ++i) {
    w2_[i] -= learning_rate * grad_w2[i] * inv_n;
  }
  b2_ -= learning_rate * grad_b2 * inv_n;
  return loss * inv_n;
}

}  // namespace sand
