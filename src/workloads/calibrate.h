// Cost-model calibration: measures the substrate's real per-op costs on a
// probe workload and returns a CostModel whose coefficients reflect this
// machine, so pruning's cache-vs-recompute decisions use measured weights
// rather than defaults.

#ifndef SAND_WORKLOADS_CALIBRATE_H_
#define SAND_WORKLOADS_CALIBRATE_H_

#include "src/common/result.h"
#include "src/graph/cost_model.h"

namespace sand {

struct CalibrationOptions {
  int probe_height = 64;
  int probe_width = 96;
  int probe_frames = 24;
  int gop_size = 8;
  int repetitions = 3;
  uint64_t seed = 99;
};

// Runs the probe workload (encode, decode, every augmentation, the cache
// codec) and returns measured coefficients. Takes a few tens of
// milliseconds at the default size.
Result<CostModel> CalibrateCostModel(const CalibrationOptions& options = {});

}  // namespace sand

#endif  // SAND_WORKLOADS_CALIBRATE_H_
