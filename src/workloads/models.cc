#include "src/workloads/models.h"

#include "src/common/strings.h"

namespace sand {

ModelProfile SlowFastProfile() {
  ModelProfile profile;
  profile.name = "slowfast";
  profile.gpu_step = FromMillis(9.0);
  profile.model_memory_bytes = 10ULL * 1024 * 1024;
  profile.memory_per_clip_bytes = 512ULL * 1024;
  profile.videos_per_batch = 4;
  profile.frames_per_video = 8;
  profile.frame_stride = 4;
  profile.resize_h = 48;
  profile.resize_w = 64;
  profile.crop_h = 40;
  profile.crop_w = 40;
  return profile;
}

ModelProfile MaeProfile() {
  ModelProfile profile;
  profile.name = "mae";
  profile.gpu_step = FromMillis(8.0);
  profile.model_memory_bytes = 12ULL * 1024 * 1024;
  profile.memory_per_clip_bytes = 384ULL * 1024;
  profile.videos_per_batch = 4;
  profile.frames_per_video = 16;  // VideoMAE: dense clips
  profile.frame_stride = 2;       // SlowFast's stride-4 grid nests inside
  profile.resize_h = 48;
  profile.resize_w = 64;
  profile.crop_h = 40;
  profile.crop_w = 40;
  return profile;
}

ModelProfile HdVilaProfile() {
  ModelProfile profile;
  profile.name = "hdvila";
  profile.gpu_step = FromMillis(10.0);
  profile.model_memory_bytes = 14ULL * 1024 * 1024;
  profile.memory_per_clip_bytes = 640ULL * 1024;
  profile.videos_per_batch = 4;
  profile.frames_per_video = 12;  // captioning: longer clips
  profile.frame_stride = 2;
  profile.resize_h = 44;
  profile.resize_w = 60;
  profile.crop_h = 40;
  profile.crop_w = 40;
  profile.color_jitter = true;
  return profile;
}

ModelProfile BasicVsrProfile() {
  ModelProfile profile;
  profile.name = "basicvsr";
  profile.gpu_step = FromMillis(5.0);
  profile.model_memory_bytes = 16ULL * 1024 * 1024;
  profile.memory_per_clip_bytes = 1024ULL * 1024;
  profile.videos_per_batch = 3;   // super-resolution: small batches
  profile.frames_per_video = 10;  // consecutive high-res frames
  profile.frame_stride = 1;
  profile.resize_h = 56;
  profile.resize_w = 80;  // minimal downscale: SR keeps resolution high
  profile.crop_h = 48;
  profile.crop_w = 48;
  return profile;
}

std::vector<ModelProfile> AllModelProfiles() {
  return {SlowFastProfile(), MaeProfile(), HdVilaProfile(), BasicVsrProfile()};
}

TaskConfig MakeTaskConfig(const ModelProfile& profile, const std::string& dataset_path,
                          const std::string& tag) {
  TaskConfig config;
  config.tag = tag;
  config.input_source = InputSource::kFile;
  config.dataset_path = dataset_path;
  config.sampling.videos_per_batch = profile.videos_per_batch;
  config.sampling.frames_per_video = profile.frames_per_video;
  config.sampling.frame_stride = profile.frame_stride;
  config.sampling.samples_per_video = profile.samples_per_video;

  AugStage resize;
  resize.name = "resize";
  resize.type = BranchType::kSingle;
  resize.inputs = {"frame"};
  resize.outputs = {"aug0"};
  AugOp resize_op;
  resize_op.kind = OpKind::kResize;
  resize_op.out_h = profile.resize_h;
  resize_op.out_w = profile.resize_w;
  resize.ops.push_back(resize_op);
  config.augmentation.push_back(std::move(resize));

  AugStage crop;
  crop.name = "crop_flip";
  crop.type = BranchType::kSingle;
  crop.inputs = {"aug0"};
  crop.outputs = {"aug1"};
  AugOp crop_op;
  crop_op.kind = OpKind::kRandomCrop;
  crop_op.out_h = profile.crop_h;
  crop_op.out_w = profile.crop_w;
  crop.ops.push_back(crop_op);
  AugOp flip_op;
  flip_op.kind = OpKind::kFlip;
  flip_op.prob = 0.5;
  crop.ops.push_back(flip_op);
  config.augmentation.push_back(std::move(crop));

  if (profile.color_jitter) {
    AugStage jitter;
    jitter.name = "jitter";
    jitter.type = BranchType::kSingle;
    jitter.inputs = {"aug1"};
    jitter.outputs = {"aug2"};
    AugOp jitter_op;
    jitter_op.kind = OpKind::kColorJitter;
    jitter_op.max_delta = 16;
    jitter_op.max_contrast = 0.15;
    jitter.ops.push_back(jitter_op);
    config.augmentation.push_back(std::move(jitter));
  }
  return config;
}

std::string MakeTaskConfigYaml(const ModelProfile& profile, const std::string& dataset_path,
                               const std::string& tag) {
  std::string yaml = StrFormat(
      "dataset:\n"
      "  tag: \"%s\"\n"
      "  input_source: file\n"
      "  video_dataset_path: %s\n"
      "  sampling:\n"
      "    videos_per_batch: %d\n"
      "    frames_per_video: %d\n"
      "    frame_stride: %d\n"
      "    samples_per_video: %d\n"
      "  augmentation:\n"
      "  - name: \"resize\"\n"
      "    branch_type: \"single\"\n"
      "    inputs: [\"frame\"]\n"
      "    outputs: [\"aug0\"]\n"
      "    config:\n"
      "    - resize:\n"
      "        shape: [%d, %d]\n"
      "        interpolation: [\"bilinear\"]\n"
      "  - name: \"crop_flip\"\n"
      "    branch_type: \"single\"\n"
      "    inputs: [\"aug0\"]\n"
      "    outputs: [\"aug1\"]\n"
      "    config:\n"
      "    - random_crop:\n"
      "        shape: [%d, %d]\n"
      "    - flip:\n"
      "        flip_prob: 0.5\n",
      tag.c_str(), dataset_path.c_str(), profile.videos_per_batch, profile.frames_per_video,
      profile.frame_stride, profile.samples_per_video, profile.resize_h, profile.resize_w,
      profile.crop_h, profile.crop_w);
  if (profile.color_jitter) {
    yaml += StrFormat(
        "  - name: \"jitter\"\n"
        "    branch_type: \"single\"\n"
        "    inputs: [\"aug1\"]\n"
        "    outputs: [\"aug2\"]\n"
        "    config:\n"
        "    - color_jitter:\n"
        "        max_delta: %d\n"
        "        max_contrast: %.2f\n",
        16, 0.15);
  }
  return yaml;
}

}  // namespace sand
