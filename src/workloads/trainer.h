// Training-loop driver.
//
// Runs the canonical VDL loop — fetch batch, train step — against any
// BatchSource (SAND through SandFs, or one of the baselines) and a
// simulated GPU, collecting the metrics every end-to-end figure reports:
// wall time, GPU utilization, stall time, CPU busy time, and energy.

#ifndef SAND_WORKLOADS_TRAINER_H_
#define SAND_WORKLOADS_TRAINER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/sim/cpu_meter.h"
#include "src/sim/energy_model.h"
#include "src/sim/gpu_model.h"
#include "src/workloads/models.h"

namespace sand {

// Supplies training batches. NextBatch blocks until the batch for
// (epoch, iteration) is available — whatever preprocessing that takes is
// the source's business. Batches are handed out as shared immutable
// buffers: a source that already holds the batch (view cache, ideal
// pre-store) returns a reference instead of copying it per iteration.
class BatchSource {
 public:
  virtual ~BatchSource() = default;
  virtual Result<SharedBytes> NextBatch(int64_t epoch, int64_t iteration) = 0;
  virtual int64_t IterationsPerEpoch() const = 0;
  // Called once when the training loop finishes (lets sources flush/close).
  virtual void Finish() {}
};

struct RunMetrics {
  Nanos wall_ns = 0;
  Nanos gpu_busy_ns = 0;
  Nanos gpu_nvdec_ns = 0;
  Nanos stall_ns = 0;        // data-loading waits observed by the loop
  Nanos cpu_busy_ns = 0;     // preprocessing CPU time (all worker threads)
  uint64_t batches = 0;
  uint64_t bytes_consumed = 0;
  Nanos iter_p50_ns = 0;     // per-iteration wall time percentiles (exact,
  Nanos iter_p95_ns = 0;     // from the recorded per-iteration samples)
  EnergyBreakdown energy;

  double GpuUtilization() const {
    return wall_ns <= 0 ? 0.0 : static_cast<double>(gpu_busy_ns) / static_cast<double>(wall_ns);
  }
  double AvgIterationMs() const {
    return batches == 0 ? 0.0 : ToMillis(wall_ns) / static_cast<double>(batches);
  }
};

struct TrainRunOptions {
  int64_t epochs = 4;
  int64_t epoch_begin = 0;  // first epoch index to request from the source
  int cpu_cores = 4;        // for energy accounting
  PowerSpec power;
};

// Runs `epochs` x IterationsPerEpoch steps. `meter` (may be null) supplies
// the CPU-busy figure; pass the meter the source's workers write to.
Result<RunMetrics> RunTraining(BatchSource& source, GpuModel& gpu, const ModelProfile& profile,
                               const TrainRunOptions& options, CpuMeter* meter);

}  // namespace sand

#endif  // SAND_WORKLOADS_TRAINER_H_
