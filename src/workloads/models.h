// Model cost profiles for the paper's four evaluation workloads.
//
// The profiles capture each model's *data demand* (clip geometry, batch
// size, sampling stride) and *compute shape* (GPU step time, device memory)
// at the repository's scaled-down size. Relative relationships follow the
// paper's setup: SlowFast and MAE are action-recognition models over
// Kinetics-style clips, HD-VILA is a captioning model with longer clips,
// BasicVSR++ is super-resolution over high-resolution frames (the heaviest
// preprocessing per step).

#ifndef SAND_WORKLOADS_MODELS_H_
#define SAND_WORKLOADS_MODELS_H_

#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/config/pipeline_config.h"

namespace sand {

struct ModelProfile {
  std::string name;
  // GPU compute per training step (already at simulation scale).
  Nanos gpu_step = FromMillis(4.0);
  // Device memory the model itself pins (weights/optimizer/activations
  // base), in the simulated GPU's scaled memory space.
  uint64_t model_memory_bytes = 8ULL * 1024 * 1024;
  // Additional device memory per clip in the batch.
  uint64_t memory_per_clip_bytes = 512ULL * 1024;
  // Sampling / augmentation geometry.
  int videos_per_batch = 4;
  int frames_per_video = 8;
  int frame_stride = 4;
  int samples_per_video = 1;
  int resize_h = 48;
  int resize_w = 64;
  int crop_h = 40;
  int crop_w = 40;
  bool color_jitter = false;
};

// The four evaluation models (Fig. 11/12 x-axis).
ModelProfile SlowFastProfile();
ModelProfile MaeProfile();
ModelProfile HdVilaProfile();
ModelProfile BasicVsrProfile();
std::vector<ModelProfile> AllModelProfiles();

// Builds the SAND task configuration equivalent to the model's standard
// preprocessing pipeline (resize -> random crop -> flip [-> jitter]).
TaskConfig MakeTaskConfig(const ModelProfile& profile, const std::string& dataset_path,
                          const std::string& tag);

// The same configuration rendered as the Fig. 9 YAML text (what a user
// would actually write); ParseTaskConfigText(MakeTaskConfigYaml(...)) ==
// MakeTaskConfig(...).
std::string MakeTaskConfigYaml(const ModelProfile& profile, const std::string& dataset_path,
                               const std::string& tag);

}  // namespace sand

#endif  // SAND_WORKLOADS_MODELS_H_
