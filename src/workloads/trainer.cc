#include "src/workloads/trainer.h"

namespace sand {

Result<RunMetrics> RunTraining(BatchSource& source, GpuModel& gpu, const ModelProfile& profile,
                               const TrainRunOptions& options, CpuMeter* meter) {
  RunMetrics metrics;
  Nanos cpu_busy_before = meter != nullptr ? meter->TotalBusy() : 0;
  gpu.BeginRun();
  Stopwatch run_watch;
  const int64_t iterations = source.IterationsPerEpoch();
  for (int64_t epoch = options.epoch_begin; epoch < options.epoch_begin + options.epochs;
       ++epoch) {
    for (int64_t iter = 0; iter < iterations; ++iter) {
      Stopwatch stall_watch;
      SAND_ASSIGN_OR_RETURN(SharedBytes batch, source.NextBatch(epoch, iter));
      metrics.stall_ns += stall_watch.Elapsed();
      metrics.bytes_consumed += batch->size();
      gpu.TrainStep(profile.gpu_step);
      ++metrics.batches;
    }
  }
  source.Finish();
  gpu.EndRun();
  GpuRunStats gpu_stats = gpu.run_stats();
  metrics.wall_ns = run_watch.Elapsed();
  metrics.gpu_busy_ns = gpu_stats.busy_ns;
  metrics.gpu_nvdec_ns = gpu_stats.nvdec_ns;
  metrics.cpu_busy_ns =
      meter != nullptr ? meter->TotalBusy() - cpu_busy_before : 0;
  metrics.energy =
      ComputeEnergy(options.power, metrics.wall_ns, metrics.cpu_busy_ns, options.cpu_cores,
                    metrics.gpu_busy_ns, metrics.gpu_nvdec_ns);
  return metrics;
}

}  // namespace sand
