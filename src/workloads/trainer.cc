#include "src/workloads/trainer.h"

#include <algorithm>
#include <vector>

namespace sand {

namespace {

// Exact q-quantile of the recorded samples (nearest-rank); 0 when empty.
Nanos SampleQuantile(std::vector<Nanos>& samples, double q) {
  if (samples.empty()) return 0;
  size_t rank = static_cast<size_t>(q * static_cast<double>(samples.size() - 1));
  std::nth_element(samples.begin(), samples.begin() + rank, samples.end());
  return samples[rank];
}

}  // namespace

Result<RunMetrics> RunTraining(BatchSource& source, GpuModel& gpu, const ModelProfile& profile,
                               const TrainRunOptions& options, CpuMeter* meter) {
  RunMetrics metrics;
  Nanos cpu_busy_before = meter != nullptr ? meter->TotalBusy() : 0;
  gpu.BeginRun();
  Stopwatch run_watch;
  const int64_t iterations = source.IterationsPerEpoch();
  std::vector<Nanos> iter_samples;
  iter_samples.reserve(static_cast<size_t>(options.epochs * iterations));
  for (int64_t epoch = options.epoch_begin; epoch < options.epoch_begin + options.epochs;
       ++epoch) {
    for (int64_t iter = 0; iter < iterations; ++iter) {
      Stopwatch iter_watch;
      SAND_ASSIGN_OR_RETURN(SharedBytes batch, source.NextBatch(epoch, iter));
      metrics.stall_ns += iter_watch.Elapsed();
      metrics.bytes_consumed += batch->size();
      gpu.TrainStep(profile.gpu_step);
      iter_samples.push_back(iter_watch.Elapsed());
      ++metrics.batches;
    }
  }
  source.Finish();
  gpu.EndRun();
  GpuRunStats gpu_stats = gpu.run_stats();
  metrics.wall_ns = run_watch.Elapsed();
  metrics.gpu_busy_ns = gpu_stats.busy_ns;
  metrics.gpu_nvdec_ns = gpu_stats.nvdec_ns;
  metrics.iter_p50_ns = SampleQuantile(iter_samples, 0.50);
  metrics.iter_p95_ns = SampleQuantile(iter_samples, 0.95);
  metrics.cpu_busy_ns =
      meter != nullptr ? meter->TotalBusy() - cpu_busy_before : 0;
  metrics.energy =
      ComputeEnergy(options.power, metrics.wall_ns, metrics.cpu_busy_ns, options.cpu_cores,
                    metrics.gpu_busy_ns, metrics.gpu_nvdec_ns);
  return metrics;
}

}  // namespace sand
