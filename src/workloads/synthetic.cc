#include "src/workloads/synthetic.h"

#include <cmath>

#include "src/codec/video_codec.h"
#include "src/common/rng.h"
#include "src/common/strings.h"

namespace sand {
namespace {

// Per-video motion parameters derived from the seed.
struct SceneParams {
  double base;        // background brightness (encodes the label)
  double drift_x;     // background gradient drift per frame
  double drift_y;
  double box_speed;   // moving box velocity
  int box_size;
  double noise;       // additive noise amplitude
  double phase;
};

SceneParams SceneFromSeed(uint64_t seed) {
  Rng rng(seed);
  SceneParams params;
  params.base = 40.0 + rng.NextDouble() * 160.0;  // label-bearing brightness
  params.drift_x = (rng.NextDouble() - 0.5) * 2.0;
  params.drift_y = (rng.NextDouble() - 0.5) * 2.0;
  params.box_speed = 0.5 + rng.NextDouble() * 2.0;
  params.box_size = 8 + static_cast<int>(rng.NextBounded(12));
  params.noise = 1.0 + rng.NextDouble() * 3.0;
  params.phase = rng.NextDouble() * 2.0 * M_PI;
  return params;
}

uint8_t Clamp255(double v) {
  if (v < 0) {
    return 0;
  }
  if (v > 255) {
    return 255;
  }
  return static_cast<uint8_t>(v);
}

}  // namespace

double SyntheticLabel(uint64_t video_seed) {
  return (SceneFromSeed(video_seed).base - 40.0) / 160.0;
}

uint64_t VideoSeed(uint64_t dataset_seed, int video_index) {
  Rng rng(dataset_seed);
  uint64_t seed = dataset_seed;
  for (int i = 0; i <= video_index; ++i) {
    seed = rng.Next();
  }
  return seed;
}

Frame SynthesizeFrame(uint64_t video_seed, int64_t t, int height, int width, int channels) {
  SceneParams params = SceneFromSeed(video_seed);
  // Deterministic per-(video, frame) noise.
  Rng noise_rng(video_seed ^ (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(t + 1)));

  Frame frame(height, width, channels);
  double ox = params.drift_x * static_cast<double>(t);
  double oy = params.drift_y * static_cast<double>(t);
  // Moving box position (bounces around the frame).
  double span_x = std::max(width - params.box_size, 1);
  double span_y = std::max(height - params.box_size, 1);
  double pos = params.box_speed * static_cast<double>(t) + params.phase * 10.0;
  int box_x = static_cast<int>(std::fabs(std::fmod(pos * 7.3, 2.0 * span_x) - span_x));
  int box_y = static_cast<int>(std::fabs(std::fmod(pos * 4.1, 2.0 * span_y) - span_y));

  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      double gradient = params.base +
                        25.0 * std::sin((x + ox) * 0.07 + params.phase) +
                        25.0 * std::cos((y + oy) * 0.05);
      bool in_box = x >= box_x && x < box_x + params.box_size && y >= box_y &&
                    y < box_y + params.box_size;
      for (int c = 0; c < channels; ++c) {
        double value = gradient + (in_box ? 60.0 - 15.0 * c : 0.0) + 8.0 * c;
        value += (noise_rng.NextDouble() - 0.5) * params.noise;
        frame.At(y, x, c) = Clamp255(value);
      }
    }
  }
  return frame;
}

Status AppendSyntheticVideo(ObjectStore& store, const SyntheticDatasetOptions& options,
                            DatasetMeta& meta) {
  int index = meta.num_videos();
  uint64_t video_seed = VideoSeed(options.seed, index);
  VideoEncoderOptions encoder_options;
  encoder_options.gop_size = meta.gop_size;
  VideoEncoder encoder(meta.height, meta.width, meta.channels, encoder_options);
  for (int64_t t = 0; t < meta.frames_per_video; ++t) {
    SAND_RETURN_IF_ERROR(encoder.AddFrame(
        SynthesizeFrame(video_seed, t, meta.height, meta.width, meta.channels)));
  }
  SAND_ASSIGN_OR_RETURN(std::vector<uint8_t> container, encoder.Finish());
  std::string name = StrFormat("vid%03d", index);
  SAND_RETURN_IF_ERROR(store.Put(meta.path + "/" + name + ".svc", container));
  meta.video_names.push_back(std::move(name));
  return Status::Ok();
}

Result<DatasetMeta> BuildSyntheticDataset(ObjectStore& store,
                                          const SyntheticDatasetOptions& options) {
  if (options.num_videos <= 0 || options.frames_per_video <= 0) {
    return InvalidArgument("synthetic dataset: sizes must be positive");
  }
  DatasetMeta meta;
  meta.path = options.path;
  meta.frames_per_video = options.frames_per_video;
  meta.height = options.height;
  meta.width = options.width;
  meta.channels = options.channels;
  meta.gop_size = options.gop_size;

  uint64_t total_bytes = 0;
  for (int v = 0; v < options.num_videos; ++v) {
    uint64_t video_seed = VideoSeed(options.seed, v);
    VideoEncoderOptions encoder_options;
    encoder_options.gop_size = options.gop_size;
    VideoEncoder encoder(options.height, options.width, options.channels, encoder_options);
    for (int64_t t = 0; t < options.frames_per_video; ++t) {
      SAND_RETURN_IF_ERROR(encoder.AddFrame(
          SynthesizeFrame(video_seed, t, options.height, options.width, options.channels)));
    }
    SAND_ASSIGN_OR_RETURN(std::vector<uint8_t> container, encoder.Finish());
    total_bytes += container.size();
    std::string name = StrFormat("vid%03d", v);
    SAND_RETURN_IF_ERROR(store.Put(options.path + "/" + name + ".svc", container));
    meta.video_names.push_back(std::move(name));
  }
  meta.encoded_bytes_per_video = total_bytes / static_cast<uint64_t>(options.num_videos);
  return meta;
}

}  // namespace sand
