// Time sources.
//
// SAND mixes real CPU work (decode, augmentation — measured with a wall
// clock) with modeled GPU work (advanced on a virtual timeline). Both are
// expressed against the Clock interface so schedulers and trackers are
// agnostic to which one drives an experiment.

#ifndef SAND_COMMON_CLOCK_H_
#define SAND_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace sand {

using Nanos = int64_t;

constexpr Nanos kNanosPerMicro = 1000;
constexpr Nanos kNanosPerMilli = 1000 * 1000;
constexpr Nanos kNanosPerSecond = 1000 * 1000 * 1000;

constexpr double ToSeconds(Nanos ns) { return static_cast<double>(ns) / kNanosPerSecond; }
constexpr double ToMillis(Nanos ns) { return static_cast<double>(ns) / kNanosPerMilli; }
constexpr Nanos FromMillis(double ms) { return static_cast<Nanos>(ms * kNanosPerMilli); }
constexpr Nanos FromSeconds(double s) { return static_cast<Nanos>(s * kNanosPerSecond); }

// Monotonic time source.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual Nanos Now() const = 0;
};

// Real monotonic clock (std::chrono::steady_clock).
class WallClock : public Clock {
 public:
  Nanos Now() const override;

  // Process-wide instance.
  static WallClock& Get();
};

// Manually advanced virtual clock used by the discrete simulators. Thread
// safe: Advance and Now may race benignly (monotonicity is preserved).
class ManualClock : public Clock {
 public:
  explicit ManualClock(Nanos start = 0) : now_(start) {}

  Nanos Now() const override { return now_.load(std::memory_order_relaxed); }

  void Advance(Nanos delta) { now_.fetch_add(delta, std::memory_order_relaxed); }

  // Moves the clock forward to `t` if it is later than the current time.
  void AdvanceTo(Nanos t);

 private:
  std::atomic<Nanos> now_;
};

// RAII stopwatch over an arbitrary clock.
class Stopwatch {
 public:
  explicit Stopwatch(const Clock& clock = WallClock::Get())
      : clock_(clock), start_(clock.Now()) {}

  Nanos Elapsed() const { return clock_.Now() - start_; }
  void Reset() { start_ = clock_.Now(); }

 private:
  const Clock& clock_;
  Nanos start_;
};

}  // namespace sand

#endif  // SAND_COMMON_CLOCK_H_
