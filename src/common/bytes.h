// SharedBytes: the repo-wide handle for an immutable refcounted byte buffer.
//
// Materialized objects (encoded containers, serialized frames, batches) are
// passed between the stores, the executor, and the VFS by reference, not by
// value: a cache hit hands out the cached allocation itself. Holders must
// treat the pointee as immutable; mutation happens only after cloning (see
// Frame's copy-on-write path).

#ifndef SAND_COMMON_BYTES_H_
#define SAND_COMMON_BYTES_H_

#include <cstdint>
#include <memory>
#include <vector>

namespace sand {

using SharedBytes = std::shared_ptr<const std::vector<uint8_t>>;

// Wraps a byte vector into a SharedBytes without copying the payload.
inline SharedBytes MakeSharedBytes(std::vector<uint8_t> bytes) {
  return std::make_shared<const std::vector<uint8_t>>(std::move(bytes));
}

}  // namespace sand

#endif  // SAND_COMMON_BYTES_H_
