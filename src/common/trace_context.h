// TraceContext: request-scoped causal identity (DESIGN.md §12).
//
// Every asynchronous hop in the demand path — Future continuations,
// WorkerPool tasks, scheduler jobs, speculative prefetch units, GOP decode
// slices, rpc_ops round trips — carries one of these so spans recorded on
// any thread can be stitched back into the request that caused them:
//
//   trace_id        - one per request (an Open+read, a speculation run);
//                     0 means "no active trace" and the next root span
//                     starts a fresh one
//   parent_span_id  - the span the next recorded span should parent under
//   job_id          - interned job/tenant tag (obs::JobRegistry); 0 means
//                     unattributed
//   request_class   - demand / speculative / pre-materialization /
//                     maintenance, for filtering and SLO accounting
//
// The context lives in a thread_local; it is *captured by value* at every
// task-submission boundary (WorkerPool::TrySubmit, scheduler Submit,
// Future::OnReady) and restored around the task body on the running
// thread. This file sits in src/common (below src/obs) so the pool and
// future primitives can capture it without a layering cycle; the tracer in
// src/obs reads it when recording spans.

#ifndef SAND_COMMON_TRACE_CONTEXT_H_
#define SAND_COMMON_TRACE_CONTEXT_H_

#include <cstdint>

namespace sand {

// Why a unit of work is running; propagated with the trace identity.
enum class RequestClass : uint8_t {
  kNone = 0,
  kDemand = 1,          // a reader is blocked on this right now
  kSpeculative = 2,     // prefetcher readahead
  kPreMaterialize = 3,  // background chunk pre-materialization
  kMaintenance = 4,     // planning, eviction, checkpointing
};

const char* RequestClassName(RequestClass c);

struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
  uint32_t job_id = 0;
  // Interned tenant tag (obs::TenantRegistry); 0 means "no tenant" (an
  // in-process caller). Set once by the socket front-end when a connection
  // authenticates and then inherited by everything the request causes —
  // pool tasks, scheduler jobs, decode slices — so the scheduler can
  // fair-share across tenants and metrics attribute to them.
  uint32_t tenant_id = 0;
  RequestClass request_class = RequestClass::kNone;

  bool active() const { return trace_id != 0; }
};

// The calling thread's current context (zeroed until something sets it).
const TraceContext& CurrentTraceContext();

// Process-unique ids (never 0). Monotonic counters, not random: runs are
// deterministic and ids double as creation order.
uint64_t NextTraceId();
uint64_t NextSpanId();

// RAII: installs `ctx` as the thread's current context, restores the
// previous one on destruction. Cheap (two thread_local copies).
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext previous_;
};

// A root context for a new request: fresh trace id, no parent span. When
// the thread already has an active trace (nested request entry), that
// trace is continued instead so causality is never severed.
TraceContext BeginRequestContext(uint32_t job_id, RequestClass request_class);

namespace internal {
// For ScopedSpan (src/obs/trace.h): mutates the current context in place.
void SetCurrentTraceContext(const TraceContext& ctx);
}  // namespace internal

}  // namespace sand

#endif  // SAND_COMMON_TRACE_CONTEXT_H_
