#include "src/common/crc32.h"

#include <array>

namespace sand {

namespace {

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::span<const uint8_t> data, uint32_t crc) {
  static const std::array<uint32_t, 256> kTable = BuildTable();
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (uint8_t byte : data) {
    c = kTable[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace sand
