// Deterministic pseudo-random number generation.
//
// All randomness in SAND (temporal frame selection, spatial crop windows,
// augmentation branches) flows through seeded Rng instances so that plans,
// tests, and benches are reproducible bit-for-bit.

#ifndef SAND_COMMON_RNG_H_
#define SAND_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace sand {

// xoshiro256** with a splitmix64 seeder. Not cryptographic; fast and
// high-quality for simulation use.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5a4d5fbeefULL);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Bernoulli trial with success probability p in [0, 1].
  bool NextBool(double p);

  // Gaussian via Box-Muller, mean 0, stddev 1.
  double NextGaussian();

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextBounded(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  // Samples `count` distinct indices from [0, population) in increasing
  // order (selection sampling). Requires count <= population.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t population, uint64_t count);

  // Derives an independent child generator (for per-task / per-epoch
  // streams) without perturbing this generator's sequence more than once.
  Rng Fork();

 private:
  uint64_t state_[4];
};

}  // namespace sand

#endif  // SAND_COMMON_RNG_H_
