// Process-wide thread identity and a shared monotonic epoch.
//
// Log lines, metric counter shards, and trace events all need to name the
// calling thread, and logs must be correlatable with trace spans; both
// therefore come from here: one dense small id per thread, one process
// start anchor for timestamps.

#ifndef SAND_COMMON_THREADING_H_
#define SAND_COMMON_THREADING_H_

#include <cstdint>

#include "src/common/clock.h"

namespace sand {

// Dense id of the calling thread: 0 for the first thread that asks, 1 for
// the next, ... Stable for the thread's lifetime; ids are never reused.
uint32_t SmallThreadId();

// Nanoseconds on the monotonic clock since the process anchor (captured on
// first use). SAND_LOG prefixes and trace-event timestamps share this
// epoch, so a log line at t=1.234s sits inside the span covering it.
Nanos SinceProcessStart();

}  // namespace sand

#endif  // SAND_COMMON_THREADING_H_
