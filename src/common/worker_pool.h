// WorkerPool: a bounded work-stealing thread pool.
//
// The async materialization path (ViewProvider::MaterializeAsync) runs its
// units here rather than on the materialization scheduler: pool tasks are
// coordinators that may *block* on scheduler jobs (batch assembly fans out
// per-video work and waits), so they need their own threads to avoid
// eating the scheduler's workers.
//
// Topology: one deque per worker, each guarded by its own small mutex.
// Submit round-robins pushes across the deques; a worker pops from the
// front of its own deque and, when empty, steals from the back of a
// sibling's — concurrent submit/run traffic on different workers never
// shares a lock. A single pool-wide mutex + condvar handles only sleeping
// and wakeup.
//
// Bounded: at most `max_queued` tasks may be pending; TrySubmit refuses
// beyond that (the caller decides whether to drop — speculative work — or
// run inline — demand work). Shutdown completes everything already queued.

#ifndef SAND_COMMON_WORKER_POOL_H_
#define SAND_COMMON_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sand {

struct WorkerPoolStats {
  uint64_t submitted = 0;
  uint64_t executed = 0;
  uint64_t stolen = 0;    // tasks run by a worker other than the one queued on
  uint64_t rejected = 0;  // TrySubmit refusals (queue at capacity / shutdown)
};

class WorkerPool {
 public:
  struct Options {
    int num_threads = 4;
    size_t max_queued = 64;
  };

  explicit WorkerPool(Options options);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Queues `task`; false when the pool is at capacity or shut down.
  bool TrySubmit(std::function<void()> task);

  // Blocks until no tasks are queued or running.
  void WaitIdle();

  // Stops accepting work, completes queued tasks, joins the threads.
  void Shutdown();

  WorkerPoolStats stats();
  size_t Pending();

 private:
  struct Slot {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(size_t self);
  // Pops from own front, then steals from siblings' backs. Returns an
  // empty function when nothing is runnable.
  std::function<void()> Grab(size_t self, bool* stolen);

  Options options_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<std::thread> threads_;
  std::atomic<uint64_t> next_slot_{0};

  // Pool-wide sleep/wake + accounting. `pending_` and `active_` are
  // guarded by mutex_ so wakeups are never lost.
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  size_t pending_ = 0;
  int active_ = 0;
  bool shutdown_ = false;
  WorkerPoolStats stats_;
};

}  // namespace sand

#endif  // SAND_COMMON_WORKER_POOL_H_
