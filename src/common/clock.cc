#include "src/common/clock.h"

#include <chrono>

namespace sand {

Nanos WallClock::Now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

WallClock& WallClock::Get() {
  static WallClock clock;
  return clock;
}

void ManualClock::AdvanceTo(Nanos t) {
  Nanos current = now_.load(std::memory_order_relaxed);
  while (t > current &&
         !now_.compare_exchange_weak(current, t, std::memory_order_relaxed)) {
  }
}

}  // namespace sand
