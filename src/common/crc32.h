// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Used by the storage tier to checksum durable objects: DiskStore appends a
// CRC footer to every object file and verifies it on read and on recovery
// rescan, so a torn or bit-rotted file is quarantined instead of served.
// Table-driven, one byte per step — ~1 GB/s, which is far above the disk
// tier's throughput and never on the memory-tier hot path.

#ifndef SAND_COMMON_CRC32_H_
#define SAND_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace sand {

// CRC of `data`, optionally continuing from a previous partial `crc`
// (chain calls to checksum discontiguous buffers as one stream).
uint32_t Crc32(std::span<const uint8_t> data, uint32_t crc = 0);

}  // namespace sand

#endif  // SAND_COMMON_CRC32_H_
