// Error-handling primitives for the SAND library.
//
// The library does not throw exceptions across module boundaries; fallible
// operations return Status (void result) or Result<T> (value-or-error),
// mirroring the expected<> idiom recommended by the C++ Core Guidelines for
// systems code.

#ifndef SAND_COMMON_RESULT_H_
#define SAND_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace sand {

// Canonical error space, loosely following POSIX/absl categories. Kept small
// on purpose: callers branch on a handful of conditions, everything else is
// diagnostic text.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kUnavailable,
  kDataLoss,
  kInternal,
};

// Human-readable name of an ErrorCode ("NOT_FOUND", ...).
const char* ErrorCodeName(ErrorCode code);

// A success-or-error value. Cheap to copy on success (empty message).
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "NOT_FOUND: no such view" — for logs and test failure output.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

// Convenience constructors, e.g. InvalidArgument("bad stride").
Status InvalidArgument(std::string message);
Status NotFound(std::string message);
Status AlreadyExists(std::string message);
Status OutOfRange(std::string message);
Status ResourceExhausted(std::string message);
Status FailedPrecondition(std::string message);
Status Unavailable(std::string message);
Status DataLoss(std::string message);
Status Internal(std::string message);

// Value-or-Status. The invariant is: exactly one of {value, error-status}
// is present; a default-constructed Result is an Internal error.
template <typename T>
class Result {
 public:
  Result() : data_(Internal("uninitialized Result")) {}
  Result(T value) : data_(std::move(value)) {}        // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(data_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk = Status::Ok();
    if (ok()) {
      return kOk;
    }
    return std::get<Status>(data_);
  }

  T& value() {
    assert(ok());
    return std::get<T>(data_);
  }
  const T& value() const {
    assert(ok());
    return std::get<T>(data_);
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  // Moves the value out; Result must hold a value.
  T TakeValue() {
    assert(ok());
    return std::move(std::get<T>(data_));
  }

  // Returns the value or `fallback` when this holds an error.
  T ValueOr(T fallback) const { return ok() ? std::get<T>(data_) : std::move(fallback); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace sand

// Propagates errors upward: `SAND_RETURN_IF_ERROR(DoThing());`
#define SAND_RETURN_IF_ERROR(expr)           \
  do {                                       \
    ::sand::Status sand_status_ = (expr);    \
    if (!sand_status_.ok()) {                \
      return sand_status_;                   \
    }                                        \
  } while (0)

// Declares `lhs` from a Result-returning expression, or propagates the error:
// `SAND_ASSIGN_OR_RETURN(auto frame, decoder.Decode(i));`
#define SAND_ASSIGN_OR_RETURN(lhs, expr)                   \
  SAND_ASSIGN_OR_RETURN_IMPL_(SAND_CONCAT_(sand_res_, __LINE__), lhs, expr)
#define SAND_CONCAT_INNER_(a, b) a##b
#define SAND_CONCAT_(a, b) SAND_CONCAT_INNER_(a, b)
#define SAND_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) {                                  \
    return tmp.status();                            \
  }                                                 \
  lhs = std::move(tmp).TakeValue()

#endif  // SAND_COMMON_RESULT_H_
