// Small string utilities used by the config parser and path layer.

#ifndef SAND_COMMON_STRINGS_H_
#define SAND_COMMON_STRINGS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sand {

// Splits on `sep`; empty fields are kept ("a//b" -> {"a", "", "b"}).
std::vector<std::string> Split(std::string_view text, char sep);

// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view text);

// Joins with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// Strict numeric parsing (whole string must be consumed).
std::optional<int64_t> ParseInt(std::string_view text);
std::optional<double> ParseDouble(std::string_view text);
std::optional<bool> ParseBool(std::string_view text);  // true/false/yes/no/on/off

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace sand

#endif  // SAND_COMMON_STRINGS_H_
