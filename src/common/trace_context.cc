#include "src/common/trace_context.h"

#include <atomic>

namespace sand {

namespace {

thread_local TraceContext g_current;

std::atomic<uint64_t> g_next_trace_id{1};
std::atomic<uint64_t> g_next_span_id{1};

}  // namespace

const char* RequestClassName(RequestClass c) {
  switch (c) {
    case RequestClass::kNone:
      return "none";
    case RequestClass::kDemand:
      return "demand";
    case RequestClass::kSpeculative:
      return "speculative";
    case RequestClass::kPreMaterialize:
      return "pre_materialize";
    case RequestClass::kMaintenance:
      return "maintenance";
  }
  return "unknown";
}

const TraceContext& CurrentTraceContext() { return g_current; }

uint64_t NextTraceId() { return g_next_trace_id.fetch_add(1, std::memory_order_relaxed); }

uint64_t NextSpanId() { return g_next_span_id.fetch_add(1, std::memory_order_relaxed); }

ScopedTraceContext::ScopedTraceContext(const TraceContext& ctx) : previous_(g_current) {
  g_current = ctx;
}

ScopedTraceContext::~ScopedTraceContext() { g_current = previous_; }

TraceContext BeginRequestContext(uint32_t job_id, RequestClass request_class) {
  TraceContext ctx = g_current;
  if (!ctx.active()) {
    ctx.trace_id = NextTraceId();
    ctx.parent_span_id = 0;
  }
  // Attribution always reflects the innermost request entry: a speculative
  // unit serving a demand read keeps the demand reader's job/class. The
  // tenant, by contrast, is a property of the *connection* (set by the
  // socket front-end before any request entry), so it is inherited as-is.
  ctx.job_id = job_id;
  ctx.request_class = request_class;
  return ctx;
}

namespace internal {
void SetCurrentTraceContext(const TraceContext& ctx) { g_current = ctx; }
}  // namespace internal

}  // namespace sand
