#include "src/common/worker_pool.h"

#include <utility>

#include "src/common/trace_context.h"

namespace sand {

WorkerPool::WorkerPool(Options options) : options_(options) {
  if (options_.num_threads < 1) {
    options_.num_threads = 1;
  }
  if (options_.max_queued < 1) {
    options_.max_queued = 1;
  }
  slots_.reserve(static_cast<size_t>(options_.num_threads));
  for (int i = 0; i < options_.num_threads; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
  threads_.reserve(slots_.size());
  for (size_t i = 0; i < slots_.size(); ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

WorkerPool::~WorkerPool() { Shutdown(); }

bool WorkerPool::TrySubmit(std::function<void()> task) {
  // Capture the submitter's trace context so the span recorded by the
  // worker parents under the span that submitted the task, not under
  // whatever the worker happened to run last.
  if (CurrentTraceContext().active()) {
    task = [ctx = CurrentTraceContext(), inner = std::move(task)] {
      ScopedTraceContext scope(ctx);
      inner();
    };
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_ || pending_ >= options_.max_queued) {
      ++stats_.rejected;
      return false;
    }
    ++pending_;
    ++stats_.submitted;
  }
  size_t slot = next_slot_.fetch_add(1, std::memory_order_relaxed) % slots_.size();
  {
    std::lock_guard<std::mutex> lock(slots_[slot]->mutex);
    slots_[slot]->tasks.push_back(std::move(task));
  }
  wake_.notify_one();
  return true;
}

std::function<void()> WorkerPool::Grab(size_t self, bool* stolen) {
  {
    std::lock_guard<std::mutex> lock(slots_[self]->mutex);
    if (!slots_[self]->tasks.empty()) {
      std::function<void()> task = std::move(slots_[self]->tasks.front());
      slots_[self]->tasks.pop_front();
      *stolen = false;
      return task;
    }
  }
  for (size_t step = 1; step < slots_.size(); ++step) {
    size_t victim = (self + step) % slots_.size();
    std::lock_guard<std::mutex> lock(slots_[victim]->mutex);
    if (!slots_[victim]->tasks.empty()) {
      std::function<void()> task = std::move(slots_[victim]->tasks.back());
      slots_[victim]->tasks.pop_back();
      *stolen = true;
      return task;
    }
  }
  *stolen = false;
  return nullptr;
}

void WorkerPool::WorkerLoop(size_t self) {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return shutdown_ || pending_ > 0; });
      if (pending_ == 0) {
        return;  // shutdown with an empty queue
      }
    }
    bool stolen = false;
    std::function<void()> task = Grab(self, &stolen);
    if (task == nullptr) {
      // Raced another worker to the last task; go back to sleep.
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --pending_;
      ++active_;
      ++stats_.executed;
      if (stolen) {
        ++stats_.stolen;
      }
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
    }
    idle_.notify_all();
  }
}

void WorkerPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return pending_ == 0 && active_ == 0; });
}

void WorkerPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) {
      return;
    }
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& thread : threads_) {
    if (thread.joinable()) {
      thread.join();
    }
  }
  threads_.clear();
}

WorkerPoolStats WorkerPool::stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

size_t WorkerPool::Pending() {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_;
}

}  // namespace sand
