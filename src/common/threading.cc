#include "src/common/threading.h"

#include <atomic>

namespace sand {

uint32_t SmallThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Nanos SinceProcessStart() {
  static const Nanos anchor = WallClock::Get().Now();
  return WallClock::Get().Now() - anchor;
}

}  // namespace sand
