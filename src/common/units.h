// Byte-size units and formatting helpers.

#ifndef SAND_COMMON_UNITS_H_
#define SAND_COMMON_UNITS_H_

#include <cstdint>
#include <string>

namespace sand {

constexpr uint64_t kKiB = 1024ULL;
constexpr uint64_t kMiB = 1024ULL * kKiB;
constexpr uint64_t kGiB = 1024ULL * kMiB;
constexpr uint64_t kTiB = 1024ULL * kGiB;

// "1.50 GiB", "320 B" — for logs and bench tables.
std::string FormatBytes(uint64_t bytes);

// "12.3 ms", "1.20 s" — for logs and bench tables.
std::string FormatDuration(double seconds);

}  // namespace sand

#endif  // SAND_COMMON_UNITS_H_
