#include "src/common/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace sand {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::optional<int64_t> ParseInt(std::string_view text) {
  if (text.empty()) {
    return std::nullopt;
  }
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return std::nullopt;
  }
  return static_cast<int64_t>(value);
}

std::optional<double> ParseDouble(std::string_view text) {
  if (text.empty()) {
    return std::nullopt;
  }
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return std::nullopt;
  }
  return value;
}

std::optional<bool> ParseBool(std::string_view text) {
  if (text == "true" || text == "yes" || text == "on") {
    return true;
  }
  if (text == "false" || text == "no" || text == "off") {
    return false;
  }
  return std::nullopt;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

}  // namespace sand
