#include "src/common/logging.h"

#include <cstdio>
#include <cstring>
#include <mutex>

#include "src/common/threading.h"

namespace sand {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_mutex;

char LevelChar(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return 'D';
    case LogLevel::kInfo:
      return 'I';
    case LogLevel::kWarning:
      return 'W';
    case LogLevel::kError:
      return 'E';
    case LogLevel::kNone:
      return '-';
  }
  return '?';
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void LogLine(LogLevel level, const std::string& message) {
  // Monotonic seconds since process start + small thread id: the same
  // epoch and ids the tracer stamps on spans, so log lines and trace
  // events correlate directly.
  double ts = ToSeconds(SinceProcessStart());
  uint32_t tid = SmallThreadId();
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%c %.6f t%02u] %s\n", LevelChar(level), ts, tid, message.c_str());
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), enabled_(static_cast<int>(level) >= g_level.load()) {
  if (enabled_) {
    stream_ << Basename(file) << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    LogLine(level_, stream_.str());
  }
}

}  // namespace sand
