// Future/Promise: the library's asynchronous-result primitive.
//
// The async demand path (ViewProvider::MaterializeAsync, the SandFs
// prefetcher) hands materialization results between threads as
// Future<SharedBytes>. The design is deliberately small:
//
//   - the payload is always a Result<T>: a future resolves exactly once,
//     to a value or to a Status, and errors travel the same rail as values
//   - futures are shared handles (copyable, like std::shared_future): any
//     number of consumers may Get() or poll Ready()
//   - OnReady registers a continuation; it runs inline when the future is
//     already resolved, otherwise on the thread that fulfills the promise.
//     Continuations must therefore be cheap and must not block on the
//     future's own executor (the prefetcher uses them only to move
//     bookkeeping entries under its own lock)
//   - a Promise destroyed without Set resolves its future to an Internal
//     "broken promise" error, so consumers never wait forever
//
// Everything is guarded by one mutex per shared state; fulfillment
// happens-before every Get()/continuation (TSan-clean by construction).

#ifndef SAND_COMMON_FUTURE_H_
#define SAND_COMMON_FUTURE_H_

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/common/trace_context.h"

namespace sand {

namespace internal {

template <typename T>
struct FutureState {
  std::mutex mutex;
  std::condition_variable cv;
  std::optional<Result<T>> value;
  std::vector<std::function<void(const Result<T>&)>> callbacks;
};

// Resolves `state` with `result` and runs pending continuations outside
// the lock (on the calling thread).
template <typename T>
void ResolveState(const std::shared_ptr<FutureState<T>>& state, Result<T> result) {
  std::vector<std::function<void(const Result<T>&)>> callbacks;
  {
    std::lock_guard<std::mutex> lock(state->mutex);
    if (state->value.has_value()) {
      return;  // already resolved (e.g. Set raced a broken-promise dtor)
    }
    state->value.emplace(std::move(result));
    callbacks.swap(state->callbacks);
  }
  state->cv.notify_all();
  for (auto& callback : callbacks) {
    callback(*state->value);
  }
}

}  // namespace internal

// Shared handle to an eventually-resolved Result<T>.
template <typename T>
class Future {
 public:
  Future() = default;  // invalid handle; valid() is false

  bool valid() const { return state_ != nullptr; }

  // True when the result is available (Get() would not block).
  bool Ready() const {
    std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->value.has_value();
  }

  // Blocks until resolved; returns a copy of the result. May be called by
  // any number of threads.
  Result<T> Get() const {
    std::unique_lock<std::mutex> lock(state_->mutex);
    state_->cv.wait(lock, [this] { return state_->value.has_value(); });
    return *state_->value;
  }

  // Runs `callback` with the result: inline if already resolved, otherwise
  // on the fulfilling thread. Callbacks must not block. The registering
  // thread's trace context travels with the callback, so a continuation
  // that fires on the fulfilling thread still attributes its work (and
  // parents its spans) to the request that registered it.
  void OnReady(std::function<void(const Result<T>&)> callback) const {
    if (CurrentTraceContext().active()) {
      callback = [ctx = CurrentTraceContext(), inner = std::move(callback)](const Result<T>& r) {
        ScopedTraceContext scope(ctx);
        inner(r);
      };
    }
    {
      std::lock_guard<std::mutex> lock(state_->mutex);
      if (!state_->value.has_value()) {
        state_->callbacks.push_back(std::move(callback));
        return;
      }
    }
    // Resolved: the value is immutable from here on; run outside the lock.
    callback(*state_->value);
  }

  // An already-resolved future (the synchronous-adapter path).
  static Future<T> FromResult(Result<T> result) {
    Future<T> future;
    future.state_ = std::make_shared<internal::FutureState<T>>();
    future.state_->value.emplace(std::move(result));
    return future;
  }

 private:
  template <typename U>
  friend class Promise;

  std::shared_ptr<internal::FutureState<T>> state_;
};

// Single-use producer side. Move-only; destroying an unfulfilled promise
// resolves the future to an Internal error.
template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<internal::FutureState<T>>()) {}
  ~Promise() {
    if (state_ != nullptr) {
      internal::ResolveState(state_, Result<T>(Internal("broken promise")));
    }
  }

  Promise(Promise&& other) noexcept : state_(std::move(other.state_)) {
    other.state_ = nullptr;
  }
  Promise& operator=(Promise&& other) noexcept {
    if (this != &other) {
      if (state_ != nullptr) {
        internal::ResolveState(state_, Result<T>(Internal("broken promise")));
      }
      state_ = std::move(other.state_);
      other.state_ = nullptr;
    }
    return *this;
  }
  Promise(const Promise&) = delete;
  Promise& operator=(const Promise&) = delete;

  Future<T> future() const {
    Future<T> f;
    f.state_ = state_;
    return f;
  }

  // Resolves the future. Exactly one Set wins; later calls are ignored.
  void Set(Result<T> result) { internal::ResolveState(state_, std::move(result)); }

 private:
  std::shared_ptr<internal::FutureState<T>> state_;
};

}  // namespace sand

#endif  // SAND_COMMON_FUTURE_H_
