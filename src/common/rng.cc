#include "src/common/rng.h"

#include <cassert>
#include <cmath>

namespace sand {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextGaussian() {
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) {
    u1 = NextDouble();
  }
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t population, uint64_t count) {
  assert(count <= population);
  std::vector<uint64_t> out;
  out.reserve(count);
  uint64_t remaining_needed = count;
  for (uint64_t i = 0; i < population && remaining_needed > 0; ++i) {
    uint64_t remaining_pop = population - i;
    if (NextBounded(remaining_pop) < remaining_needed) {
      out.push_back(i);
      --remaining_needed;
    }
  }
  return out;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace sand
