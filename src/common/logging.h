// Minimal leveled logger.
//
// SAND_LOG(kInfo) << "decoded " << n << " frames";
//
// The logger is process-global, thread-safe, and writes to stderr. Benches
// and tests lower the level to kWarning to keep output stable.

#ifndef SAND_COMMON_LOGGING_H_
#define SAND_COMMON_LOGGING_H_

#include <atomic>
#include <sstream>
#include <string>

namespace sand {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kNone = 4,
};

// Global threshold; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Internal: emits one formatted line ("[I 12.345678 t03] message"): level,
// monotonic seconds since process start, small thread id — the same epoch
// and thread ids trace spans carry (src/common/threading.h), so log output
// correlates with captured traces.
void LogLine(LogLevel level, const std::string& message);

// Stream-style log statement builder; flushes on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) {
      stream_ << value;
    }
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace sand

#define SAND_LOG(severity) \
  ::sand::LogMessage(::sand::LogLevel::severity, __FILE__, __LINE__)

#endif  // SAND_COMMON_LOGGING_H_
