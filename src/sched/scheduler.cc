#include "src/sched/scheduler.h"

#include <algorithm>
#include <cassert>

#include "src/common/threading.h"
#include "src/obs/attribution.h"
#include "src/obs/trace.h"

namespace sand {

MaterializationScheduler::MaterializationScheduler(Options options)
    : options_(std::move(options)),
      jobs_run_(obs::Registry::Get().GetCounter("sand.sched.jobs_run")),
      demand_jobs_run_(obs::Registry::Get().GetCounter("sand.sched.demand_jobs_run")),
      deadline_pops_(obs::Registry::Get().GetCounter("sand.sched.deadline_pops")),
      sjf_pops_(obs::Registry::Get().GetCounter("sand.sched.sjf_pops")),
      speculative_pops_(obs::Registry::Get().GetCounter("sand.sched.speculative_pops")),
      capped_skips_(obs::Registry::Get().GetCounter("sand.sched.capped_skips")),
      queue_depth_(obs::Registry::Get().GetGauge("sand.sched.queue_depth")),
      job_latency_ns_(obs::Registry::Get().GetHistogram("sand.sched.job_latency_ns")) {
  if (options_.num_threads < 1) {
    options_.num_threads = 1;
  }
  workers_.reserve(static_cast<size_t>(options_.num_threads));
  for (int i = 0; i < options_.num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

MaterializationScheduler::~MaterializationScheduler() { Shutdown(); }

void MaterializationScheduler::Submit(MaterializationJob job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    assert(!shutdown_ && "Submit after Shutdown");
    queue_.push_back(std::move(job));
    queue_depth_->Set(static_cast<int64_t>(queue_.size()));
  }
  wake_.notify_one();
}

bool MaterializationScheduler::TenantCappedLocked(const MaterializationJob& job) {
  auto cap = tenant_caps_.find(job.ctx.tenant_id);
  if (cap == tenant_caps_.end()) {
    return false;
  }
  auto running = tenant_running_.find(job.ctx.tenant_id);
  return running != tenant_running_.end() && running->second >= cap->second;
}

bool MaterializationScheduler::HasRunnableLocked() {
  if (tenant_caps_.empty()) {
    return !queue_.empty();
  }
  for (const MaterializationJob& job : queue_) {
    if (!TenantCappedLocked(job)) {
      return true;
    }
  }
  return false;
}

MaterializationJob MaterializationScheduler::PopLocked() {
  assert(!queue_.empty());
  ++pop_seq_;
  // A pop that had to pass over a quota-capped tenant's work is the signal
  // quota enforcement is active (tests and the /.sand/tenants views read it).
  if (!tenant_caps_.empty()) {
    for (const MaterializationJob& job : queue_) {
      if (TenantCappedLocked(job)) {
        ++stats_.capped_skips;
        capped_skips_->Add(1);
        break;
      }
    }
  }
  auto runnable = [this](const MaterializationJob& job) { return !TenantCappedLocked(job); };
  // The least-recently-served runnable tenant in `served` wins; queue
  // order breaks ties, so single-tenant workloads reduce to the legacy
  // policy exactly.
  auto pick_tenant = [&](bool demand_class, const std::map<uint32_t, uint64_t>& served,
                         bool* found) -> uint32_t {
    uint32_t best_tenant = 0;
    uint64_t best_seq = 0;
    *found = false;
    for (const MaterializationJob& job : queue_) {
      if (job.demand_feeding != demand_class || !runnable(job)) {
        continue;
      }
      auto it = served.find(job.ctx.tenant_id);
      uint64_t seq = it == served.end() ? 0 : it->second;
      if (!*found || seq < best_seq) {
        *found = true;
        best_tenant = job.ctx.tenant_id;
        best_seq = seq;
      }
    }
    return best_tenant;
  };

  auto best = queue_.end();
  if (options_.disable_priorities) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (runnable(*it)) {
        best = it;
        break;
      }
    }
  } else {
    // Demand-feeding first: rotate across tenants with queued demand work,
    // FIFO within the chosen tenant.
    bool have_demand = false;
    uint32_t demand_tenant = pick_tenant(/*demand_class=*/true, demand_last_served_, &have_demand);
    if (have_demand) {
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->demand_feeding && it->ctx.tenant_id == demand_tenant) {
          best = it;
          break;
        }
      }
      demand_last_served_[demand_tenant] = pop_seq_;
    } else {
      bool have_background = false;
      uint32_t tenant =
          pick_tenant(/*demand_class=*/false, background_last_served_, &have_background);
      assert(have_background && "PopLocked without a runnable job");
      background_last_served_[tenant] = pop_seq_;
      double pressure = options_.memory_pressure ? options_.memory_pressure() : 0.0;
      bool use_sjf = pressure >= options_.sjf_watermark;
      auto better = [use_sjf](const MaterializationJob& a, const MaterializationJob& b) {
        return use_sjf ? a.remaining_work < b.remaining_work : a.deadline < b.deadline;
      };
      // Rank the chosen tenant's jobs within each background class, then
      // pick the class: alternate when both speculative (prefetch) and
      // pre-materialization jobs are queued so neither starves the other.
      auto best_pre = queue_.end();
      auto best_spec = queue_.end();
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->demand_feeding || it->ctx.tenant_id != tenant || !runnable(*it)) {
          continue;
        }
        auto& slot = it->speculative ? best_spec : best_pre;
        if (slot == queue_.end() || better(*it, *slot)) {
          slot = it;
        }
      }
      if (best_pre == queue_.end()) {
        best = best_spec;
      } else if (best_spec == queue_.end()) {
        best = best_pre;
      } else {
        best = last_pop_speculative_ ? best_pre : best_spec;
      }
      last_pop_speculative_ = best->speculative;
      if (best->speculative) {
        ++stats_.speculative_pops;
        speculative_pops_->Add(1);
      }
      if (use_sjf) {
        ++stats_.sjf_pops;
        sjf_pops_->Add(1);
      } else {
        ++stats_.deadline_pops;
        deadline_pops_->Add(1);
      }
    }
  }
  assert(best != queue_.end() && "PopLocked without a runnable job");
  MaterializationJob job = std::move(*best);
  queue_.erase(best);
  ++tenant_running_[job.ctx.tenant_id];
  queue_depth_->Set(static_cast<int64_t>(queue_.size()));
  return job;
}

void MaterializationScheduler::SetTenantRunningCap(uint32_t tenant_id, int max_running) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (max_running <= 0) {
      tenant_caps_.erase(tenant_id);
    } else {
      tenant_caps_[tenant_id] = std::max(1, max_running);
    }
  }
  wake_.notify_all();
}

void MaterializationScheduler::WorkerLoop() {
  while (true) {
    MaterializationJob job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      // A queue holding only quota-capped tenants' jobs is not runnable
      // yet: sleep until one of their running jobs finishes (completion
      // notifies wake_) rather than overrun the cap. Caps are >= 1, so a
      // capped tenant always has something running to wake us.
      wake_.wait(lock, [this] { return shutdown_ ? queue_.empty() || HasRunnableLocked()
                                                 : HasRunnableLocked(); });
      if (queue_.empty()) {
        return;  // shutdown with nothing left
      }
      job = PopLocked();
      ++active_;
      ++stats_.jobs_run;
      ++stats_.jobs_run_by_tenant[job.ctx.tenant_id];
      jobs_run_->Add(1);
      if (job.demand_feeding) {
        ++stats_.demand_jobs_run;
        demand_jobs_run_->Add(1);
      }
    }
    if (obs::TenantMetrics* tenant = obs::TenantMetricsFor(job.ctx.tenant_id)) {
      tenant->sched_jobs_run->Add(1);
    }
    {
      ScopedTraceContext trace_scope(job.ctx);
      SAND_SPAN("sched_job");
      Nanos start = SinceProcessStart();
      job.run();
      job_latency_ns_->Record(static_cast<uint64_t>(SinceProcessStart() - start));
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      auto running = tenant_running_.find(job.ctx.tenant_id);
      if (running != tenant_running_.end() && --running->second <= 0) {
        tenant_running_.erase(running);
      }
    }
    // Completion may unblock a worker parked on a capped tenant as well as
    // a WaitIdle caller.
    wake_.notify_all();
    idle_.notify_all();
  }
}

void MaterializationScheduler::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void MaterializationScheduler::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) {
      return;
    }
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  workers_.clear();
}

SchedulerStats MaterializationScheduler::stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

size_t MaterializationScheduler::PendingCount() {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace sand
