#include "src/sched/scheduler.h"

#include <algorithm>
#include <cassert>

#include "src/common/threading.h"
#include "src/obs/trace.h"

namespace sand {

MaterializationScheduler::MaterializationScheduler(Options options)
    : options_(std::move(options)),
      jobs_run_(obs::Registry::Get().GetCounter("sand.sched.jobs_run")),
      demand_jobs_run_(obs::Registry::Get().GetCounter("sand.sched.demand_jobs_run")),
      deadline_pops_(obs::Registry::Get().GetCounter("sand.sched.deadline_pops")),
      sjf_pops_(obs::Registry::Get().GetCounter("sand.sched.sjf_pops")),
      speculative_pops_(obs::Registry::Get().GetCounter("sand.sched.speculative_pops")),
      queue_depth_(obs::Registry::Get().GetGauge("sand.sched.queue_depth")),
      job_latency_ns_(obs::Registry::Get().GetHistogram("sand.sched.job_latency_ns")) {
  if (options_.num_threads < 1) {
    options_.num_threads = 1;
  }
  workers_.reserve(static_cast<size_t>(options_.num_threads));
  for (int i = 0; i < options_.num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

MaterializationScheduler::~MaterializationScheduler() { Shutdown(); }

void MaterializationScheduler::Submit(MaterializationJob job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    assert(!shutdown_ && "Submit after Shutdown");
    queue_.push_back(std::move(job));
    queue_depth_->Set(static_cast<int64_t>(queue_.size()));
  }
  wake_.notify_one();
}

MaterializationJob MaterializationScheduler::PopLocked() {
  assert(!queue_.empty());
  auto best = queue_.begin();
  if (!options_.disable_priorities) {
    // Demand-feeding first (FIFO among themselves).
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->demand_feeding) {
        best = it;
        break;
      }
    }
    if (!best->demand_feeding) {
      double pressure = options_.memory_pressure ? options_.memory_pressure() : 0.0;
      bool use_sjf = pressure >= options_.sjf_watermark;
      auto better = [use_sjf](const MaterializationJob& a, const MaterializationJob& b) {
        return use_sjf ? a.remaining_work < b.remaining_work : a.deadline < b.deadline;
      };
      // Rank within each background class, then pick the class: alternate
      // when both speculative (prefetch) and pre-materialization jobs are
      // queued so neither starves the other.
      auto best_pre = queue_.end();
      auto best_spec = queue_.end();
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        auto& slot = it->speculative ? best_spec : best_pre;
        if (slot == queue_.end() || better(*it, *slot)) {
          slot = it;
        }
      }
      if (best_pre == queue_.end()) {
        best = best_spec;
      } else if (best_spec == queue_.end()) {
        best = best_pre;
      } else {
        best = last_pop_speculative_ ? best_pre : best_spec;
      }
      last_pop_speculative_ = best->speculative;
      if (best->speculative) {
        ++stats_.speculative_pops;
        speculative_pops_->Add(1);
      }
      if (use_sjf) {
        ++stats_.sjf_pops;
        sjf_pops_->Add(1);
      } else {
        ++stats_.deadline_pops;
        deadline_pops_->Add(1);
      }
    }
  }
  MaterializationJob job = std::move(*best);
  queue_.erase(best);
  queue_depth_->Set(static_cast<int64_t>(queue_.size()));
  return job;
}

void MaterializationScheduler::WorkerLoop() {
  while (true) {
    MaterializationJob job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutdown with nothing left
      }
      job = PopLocked();
      ++active_;
      ++stats_.jobs_run;
      jobs_run_->Add(1);
      if (job.demand_feeding) {
        ++stats_.demand_jobs_run;
        demand_jobs_run_->Add(1);
      }
    }
    {
      ScopedTraceContext trace_scope(job.ctx);
      SAND_SPAN("sched_job");
      Nanos start = SinceProcessStart();
      job.run();
      job_latency_ns_->Record(static_cast<uint64_t>(SinceProcessStart() - start));
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
    }
    idle_.notify_all();
  }
}

void MaterializationScheduler::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void MaterializationScheduler::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) {
      return;
    }
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  workers_.clear();
}

SchedulerStats MaterializationScheduler::stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

size_t MaterializationScheduler::PendingCount() {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace sand
