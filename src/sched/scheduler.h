// Priority-based materialization scheduling (paper §5.4).
//
// Three worker classes share one CPU thread pool:
//   demand-feeding      - prepares the batch the GPU needs *now*; always
//                         wins over background work
//   pre-materialization - produces objects for upcoming iterations/epochs
//   speculative         - prefetcher readahead of predicted next batches
//                         (the async demand path's pipelined units)
//
// Background jobs are ordered earliest-deadline-first, where a job's
// deadline is the global iteration at which its object is consumed. When
// memory pressure crosses a watermark the policy flips to shortest-job-
// first (fewest unprocessed edges), draining almost-done subtrees so their
// pinned decoded frames can be freed (paper: SJF above ~80% memory use).
//
// Speculative jobs have near-term deadlines (the very next iterations), so
// pure EDF would let a steady prefetch stream starve pre-materialization
// of future epochs. When both classes are queued, pops alternate between
// them (EDF/SJF ordering applies within each class) — neither readahead
// nor pre-materialization can monopolize the background share.
//
// Multi-tenant fair-share (DESIGN.md §13): jobs carry the submitting
// tenant in their TraceContext. Within each class, pops rotate across
// tenants that have queued work (least-recently-served tenant first, job
// order within the tenant unchanged), so one tenant flooding the queue
// cannot starve another's demand class. A tenant may additionally be
// capped to N concurrently running jobs (SetTenantRunningCap); a capped
// tenant's jobs are skipped while it is at its limit — workers sleep
// rather than overrun a quota, and wake when a job finishes.

#ifndef SAND_SCHED_SCHEDULER_H_
#define SAND_SCHED_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/trace_context.h"
#include "src/obs/metrics.h"

namespace sand {

struct MaterializationJob {
  // Smaller = needed sooner. Deadlines are global iteration numbers.
  int64_t deadline = 0;
  // Unprocessed edges left in this job's subtree; the SJF key.
  int64_t remaining_work = 0;
  // Demand-feeding jobs preempt (in queue order) all background work.
  bool demand_feeding = false;
  // Prefetcher readahead: background class that alternates fairly with
  // pre-materialization instead of outranking it on deadline.
  bool speculative = false;
  std::function<void()> run;
  // Captured at construction on the submitting thread; the worker restores
  // it around run() so the job's spans join the submitter's trace.
  TraceContext ctx = CurrentTraceContext();
};

struct SchedulerStats {
  uint64_t jobs_run = 0;
  uint64_t demand_jobs_run = 0;
  uint64_t deadline_pops = 0;    // background pops under the EDF policy
  uint64_t sjf_pops = 0;         // background pops under the SJF policy
  uint64_t speculative_pops = 0;  // background pops that chose a prefetch job
  uint64_t capped_skips = 0;      // pops that bypassed a tenant at its running cap
  // Jobs completed per tenant id (0 = untenanted in-process work).
  std::map<uint32_t, uint64_t> jobs_run_by_tenant;
};

class MaterializationScheduler {
 public:
  struct Options {
    int num_threads = 4;
    // Current memory pressure in [0, 1]; polled at each pop. Defaults to
    // "no pressure".
    std::function<double()> memory_pressure;
    double sjf_watermark = 0.8;
    // Disables prioritization entirely (FIFO pops) — the Fig. 18 ablation.
    bool disable_priorities = false;
  };

  explicit MaterializationScheduler(Options options);
  ~MaterializationScheduler();

  MaterializationScheduler(const MaterializationScheduler&) = delete;
  MaterializationScheduler& operator=(const MaterializationScheduler&) = delete;

  void Submit(MaterializationJob job);

  // Caps how many of `tenant_id`'s jobs may run concurrently (its
  // scheduler quota). Clamped to >= 1 so a capped tenant always makes
  // progress; 0 removes the cap. Takes effect at the next pop.
  void SetTenantRunningCap(uint32_t tenant_id, int max_running);

  // Blocks until the queue is empty and all workers are idle.
  void WaitIdle();

  // Stops accepting work and joins workers (pending jobs are completed).
  void Shutdown();

  SchedulerStats stats();
  size_t PendingCount();

 private:
  void WorkerLoop();
  // Extracts the next job per the current policy. Caller holds mutex_ and
  // has verified HasRunnableLocked().
  MaterializationJob PopLocked();
  // True when some queued job belongs to a tenant under its running cap.
  bool HasRunnableLocked();
  // True when `job`'s tenant is at its running cap right now.
  bool TenantCappedLocked(const MaterializationJob& job);

  Options options_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::list<MaterializationJob> queue_;
  std::vector<std::thread> workers_;
  int active_ = 0;
  bool shutdown_ = false;
  // Fair alternation between the speculative and pre-materialization
  // background classes when both have queued jobs.
  bool last_pop_speculative_ = false;
  // Tenant rotation state: the pop sequence at which each tenant was last
  // served, per class group (demand vs background). Least-recently-served
  // tenant wins the next pop of that group.
  uint64_t pop_seq_ = 0;
  std::map<uint32_t, uint64_t> demand_last_served_;
  std::map<uint32_t, uint64_t> background_last_served_;
  // Per-tenant running-job counts and caps (0 entries are erased).
  std::map<uint32_t, int> tenant_running_;
  std::map<uint32_t, int> tenant_caps_;
  SchedulerStats stats_;

  // Registry mirrors of stats_ plus live queue depth ("sand.sched.*" in
  // /.sand/metrics); bumped under mutex_, so plain counters would do, but
  // the registry types keep one publishing surface.
  obs::Counter* jobs_run_;
  obs::Counter* demand_jobs_run_;
  obs::Counter* deadline_pops_;
  obs::Counter* sjf_pops_;
  obs::Counter* speculative_pops_;
  obs::Counter* capped_skips_;
  obs::Gauge* queue_depth_;
  obs::Histogram* job_latency_ns_;
};

}  // namespace sand

#endif  // SAND_SCHED_SCHEDULER_H_
