#include "src/storage/live_ingest.h"

namespace sand {

bool LiveIngestStore::VisibleLocked(const std::string& key) const {
  auto it = publish_times_.find(key);
  return it != publish_times_.end() && it->second <= now_;
}

Status LiveIngestStore::PutAt(const std::string& key, std::span<const uint8_t> data,
                              Nanos publish_at) {
  SAND_RETURN_IF_ERROR(backing_->Put(key, data));
  std::lock_guard<std::mutex> lock(mutex_);
  publish_times_[key] = publish_at;
  return Status::Ok();
}

Nanos LiveIngestStore::Now() {
  std::lock_guard<std::mutex> lock(mutex_);
  return now_;
}

void LiveIngestStore::AdvanceTo(Nanos time) {
  std::lock_guard<std::mutex> lock(mutex_);
  now_ = std::max(now_, time);
}

std::vector<std::string> LiveIngestStore::PendingKeys() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  for (const auto& [key, publish_at] : publish_times_) {
    if (publish_at > now_) {
      out.push_back(key);
    }
  }
  return out;
}

Status LiveIngestStore::Put(const std::string& key, std::span<const uint8_t> data) {
  Nanos at;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    at = now_;
  }
  return PutAt(key, data, at);
}

Result<SharedBytes> LiveIngestStore::GetShared(const std::string& key) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!VisibleLocked(key)) {
      return NotFound("not yet ingested: " + key);
    }
  }
  return backing_->GetShared(key);
}

bool LiveIngestStore::Contains(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  return VisibleLocked(key);
}

Result<uint64_t> LiveIngestStore::SizeOf(const std::string& key) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!VisibleLocked(key)) {
      return NotFound("not yet ingested: " + key);
    }
  }
  return backing_->SizeOf(key);
}

Status LiveIngestStore::Delete(const std::string& key) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    publish_times_.erase(key);
  }
  return backing_->Delete(key);
}

std::vector<std::string> LiveIngestStore::ListKeys() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  for (const auto& [key, publish_at] : publish_times_) {
    if (publish_at <= now_) {
      out.push_back(key);
    }
  }
  return out;
}

}  // namespace sand
