// Object storage substrate.
//
// SAND treats training objects (encoded videos, cached frames, batches) as
// key-addressed blobs. This module provides the stores the paper's
// environment offers:
//   MemoryStore  - instance RAM (fast, small)
//   DiskStore    - local NVMe (real files under a root dir, capacity-capped)
//   RemoteStore  - Filestore/S3-like remote volume (bandwidth-throttled
//                  wrapper with traffic accounting)
//   TieredCache  - memory over disk, the physical home of materialized views
//
// Concurrency and the zero-copy read path: MemoryStore and DiskStore shard
// their key space by hash with one mutex per shard, so concurrent jobs
// touching different objects never serialize on a global lock. GetShared()
// is the primary read path — a memory-tier hit hands out a reference to the
// cached allocation itself (SharedBytes), not a copy; callers must treat the
// buffer as immutable. The byte-oriented Get() remains as a thin compat
// wrapper that copies out of GetShared().

#ifndef SAND_STORAGE_OBJECT_STORE_H_
#define SAND_STORAGE_OBJECT_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/clock.h"
#include "src/common/result.h"
#include "src/obs/metrics.h"

namespace sand {

// Key-hash shards per store. 16 shards keep lock collisions rare at the
// scheduler thread counts this repo runs (4-16 workers) while costing only
// 16 mutexes + map headers per store; see DESIGN.md "Object lifecycle and
// zero-copy invariants".
inline constexpr size_t kDefaultStoreShards = 16;

// Abstract key-value blob store. Implementations are thread-safe.
class ObjectStore {
 public:
  virtual ~ObjectStore() = default;

  // Stores `data` under `key`, replacing any existing object. Fails with
  // RESOURCE_EXHAUSTED when the store is over capacity.
  virtual Status Put(const std::string& key, std::span<const uint8_t> data) = 0;

  // Stores an already-refcounted buffer. Memory-resident stores adopt the
  // reference instead of copying the payload (the zero-copy promotion path).
  // Default: copies via Put.
  virtual Status PutShared(const std::string& key, SharedBytes data);

  // Atomically stores `data` only if `key` is absent. Returns true when the
  // object was inserted, false when the key already existed (the store is
  // left unchanged). Replaces racy Contains()-then-Put() sequences.
  virtual Result<bool> PutIfAbsent(const std::string& key, std::span<const uint8_t> data);

  // Primary read path: a reference to the stored bytes. Memory-resident
  // stores hand out the cached allocation itself; callers must not mutate
  // the pointee. Replaces racy Contains()-then-Get() sequences.
  virtual Result<SharedBytes> GetShared(const std::string& key) = 0;

  // Compat wrapper: copies the object out of GetShared().
  Result<std::vector<uint8_t>> Get(const std::string& key);

  virtual bool Contains(const std::string& key) = 0;

  // Size of the stored object, or NOT_FOUND.
  virtual Result<uint64_t> SizeOf(const std::string& key) = 0;

  virtual Status Delete(const std::string& key) = 0;

  virtual uint64_t UsedBytes() = 0;
  virtual uint64_t CapacityBytes() = 0;

  // All keys, sorted. Intended for recovery scans and tests.
  virtual std::vector<std::string> ListKeys() = 0;

  // Re-synchronizes in-memory accounting with durable state (no-op for
  // volatile stores). The crash-recovery hook.
  virtual Status Rescan() { return Status::Ok(); }
};

// In-memory store. Sharded: per-shard mutex + map, atomic usage counter.
class MemoryStore : public ObjectStore {
 public:
  explicit MemoryStore(uint64_t capacity_bytes = UINT64_MAX,
                       size_t num_shards = kDefaultStoreShards);

  Status Put(const std::string& key, std::span<const uint8_t> data) override;
  Status PutShared(const std::string& key, SharedBytes data) override;
  Result<bool> PutIfAbsent(const std::string& key, std::span<const uint8_t> data) override;
  Result<SharedBytes> GetShared(const std::string& key) override;
  bool Contains(const std::string& key) override;
  Result<uint64_t> SizeOf(const std::string& key) override;
  Status Delete(const std::string& key) override;
  uint64_t UsedBytes() override { return used_.load(std::memory_order_relaxed); }
  uint64_t CapacityBytes() override { return capacity_; }
  std::vector<std::string> ListKeys() override;

 private:
  struct Shard {
    std::mutex mutex;
    std::map<std::string, SharedBytes> objects;
  };

  Shard& ShardFor(const std::string& key) {
    return shards_[std::hash<std::string>{}(key) % shards_.size()];
  }
  // Reserves `incoming` bytes against capacity, releasing `existing` (the
  // replaced object's size) on success. Caller holds the shard lock.
  Status Reserve(uint64_t incoming, uint64_t existing, const char* what);

  const uint64_t capacity_;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> used_{0};
};

// Filesystem-backed store. Keys map to files under `root`; slashes in keys
// become directories. Usage is tracked in memory and rebuilt by Rescan().
// The size index is sharded like MemoryStore's map, so file I/O for
// different keys proceeds in parallel.
class DiskStore : public ObjectStore {
 public:
  // Creates `root` if missing and scans any existing objects.
  static Result<std::unique_ptr<DiskStore>> Open(const std::string& root,
                                                 uint64_t capacity_bytes);

  Status Put(const std::string& key, std::span<const uint8_t> data) override;
  Result<bool> PutIfAbsent(const std::string& key, std::span<const uint8_t> data) override;
  Result<SharedBytes> GetShared(const std::string& key) override;
  bool Contains(const std::string& key) override;
  Result<uint64_t> SizeOf(const std::string& key) override;
  Status Delete(const std::string& key) override;
  uint64_t UsedBytes() override { return used_.load(std::memory_order_relaxed); }
  uint64_t CapacityBytes() override { return capacity_; }
  std::vector<std::string> ListKeys() override;

  // Re-walks the directory tree and rebuilds the key/size map; the recovery
  // path after a crash (paper §5.5).
  Status Rescan() override;

  const std::string& root() const { return root_; }

 private:
  struct Shard {
    std::mutex mutex;
    std::map<std::string, uint64_t> sizes;
  };

  DiskStore(std::string root, uint64_t capacity_bytes);

  Shard& ShardFor(const std::string& key) {
    return shards_[std::hash<std::string>{}(key) % shards_.size()];
  }
  std::string PathFor(const std::string& key) const;
  // Writes the object file; caller holds the shard lock for `key`.
  Status WriteObject(const std::string& key, std::span<const uint8_t> data);

  const std::string root_;
  const uint64_t capacity_;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> used_{0};
};

// Traffic counters for RemoteStore (Fig. 14's network-savings metric).
struct RemoteTraffic {
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t read_ops = 0;
  uint64_t write_ops = 0;
};

// Wraps a backing store behind a bandwidth/latency model; each transfer
// sleeps for its modeled duration (scaled-down WAN link).
class RemoteStore : public ObjectStore {
 public:
  RemoteStore(std::shared_ptr<ObjectStore> backing, double bandwidth_bytes_per_sec,
              Nanos latency_per_op = 0);

  Status Put(const std::string& key, std::span<const uint8_t> data) override;
  Result<bool> PutIfAbsent(const std::string& key, std::span<const uint8_t> data) override;
  Result<SharedBytes> GetShared(const std::string& key) override;
  bool Contains(const std::string& key) override;
  Result<uint64_t> SizeOf(const std::string& key) override;
  Status Delete(const std::string& key) override;
  uint64_t UsedBytes() override;
  uint64_t CapacityBytes() override;
  std::vector<std::string> ListKeys() override;

  RemoteTraffic traffic();
  void ResetTraffic();

 private:
  void ChargeTransfer(uint64_t bytes);

  std::shared_ptr<ObjectStore> backing_;
  const double bandwidth_;
  const Nanos latency_;
  std::mutex mutex_;
  RemoteTraffic traffic_;
};

// Which tier a cached object should land in.
enum class Tier {
  kMemory,
  kDisk,
};

// Two-level cache: a MemoryStore in front of a disk (or any) store. Reads
// check memory first and promote on hit from below; promotion reuses the
// disk tier's buffer (PutShared), so a promoted object is held once. The
// eviction *policy* lives in the SAND core; this class only provides the
// mechanics.
//
// Every instance publishes hit/miss/promotion/byte counters to the global
// obs registry ("sand.cache.*", visible at /.sand/metrics) and emits
// store_get/store_put trace spans; the pointers are resolved once at
// construction so the hot path stays a relaxed fetch_add.
class TieredCache {
 public:
  TieredCache(std::shared_ptr<ObjectStore> memory, std::shared_ptr<ObjectStore> disk);

  Status Put(const std::string& key, std::span<const uint8_t> data, Tier tier);
  // Zero-copy insert: memory-resident tiers adopt the refcounted buffer
  // (falling through to a disk-tier copy when memory is full).
  Status PutShared(const std::string& key, SharedBytes data, Tier tier);
  // Single-call insert-if-absent into `tier` (falling through to disk when
  // memory is full). True when this call stored the object.
  Result<bool> PutIfAbsent(const std::string& key, std::span<const uint8_t> data, Tier tier);
  // Primary read path: memory-tier hits are zero-copy references.
  Result<SharedBytes> GetShared(const std::string& key);
  // Compat wrapper copying out of GetShared.
  Result<std::vector<uint8_t>> Get(const std::string& key);
  bool Contains(const std::string& key);
  Status Delete(const std::string& key);

  // --- Pinning (async demand path) ---------------------------------------
  // A pinned key refuses Delete and Demote: in-flight speculative objects
  // (a prefetched batch between materialization and consumption) must not
  // be reclaimed by the eviction policy mid-flight. Pins are counted, so
  // nested Pin/Unpin pairs compose; pinning an absent key is allowed (the
  // producer pins before Put so eviction can never win the race against a
  // fresh insert).
  void Pin(const std::string& key);
  void Unpin(const std::string& key);
  bool IsPinned(const std::string& key);

  // Moves an object from memory to disk (spill) keeping it cached.
  Status Demote(const std::string& key);

  uint64_t MemoryUsedBytes() { return memory_->UsedBytes(); }
  uint64_t DiskUsedBytes() { return disk_->UsedBytes(); }
  uint64_t MemoryCapacityBytes() { return memory_->CapacityBytes(); }
  uint64_t DiskCapacityBytes() { return disk_->CapacityBytes(); }

  ObjectStore& memory() { return *memory_; }
  ObjectStore& disk() { return *disk_; }

 private:
  void UpdateUsageGauges();

  std::shared_ptr<ObjectStore> memory_;
  std::shared_ptr<ObjectStore> disk_;

  // key -> pin count; entries are erased at zero.
  std::mutex pin_mutex_;
  std::map<std::string, int> pins_;

  // Registry-backed counters (process-global, cached here).
  obs::Counter* memory_hits_;
  obs::Counter* disk_hits_;
  obs::Counter* misses_;
  obs::Counter* promotions_;
  obs::Counter* demotions_;
  obs::Counter* memory_puts_;
  obs::Counter* disk_puts_;
  obs::Counter* bytes_read_memory_;
  obs::Counter* bytes_read_disk_;
  obs::Counter* bytes_written_memory_;
  obs::Counter* bytes_written_disk_;
  obs::Gauge* memory_used_;
  obs::Gauge* disk_used_;
  obs::Gauge* pinned_keys_;
};

}  // namespace sand

#endif  // SAND_STORAGE_OBJECT_STORE_H_
