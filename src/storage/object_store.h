// Object storage substrate.
//
// SAND treats training objects (encoded videos, cached frames, batches) as
// key-addressed blobs. This module provides the stores the paper's
// environment offers:
//   MemoryStore  - instance RAM (fast, small)
//   DiskStore    - local NVMe (real files under a root dir, capacity-capped)
//   RemoteStore  - Filestore/S3-like remote volume (bandwidth-throttled
//                  wrapper with traffic accounting)
//   TieredCache  - memory over disk, the physical home of materialized views
//
// Concurrency and the zero-copy read path: MemoryStore and DiskStore shard
// their key space by hash with one mutex per shard, so concurrent jobs
// touching different objects never serialize on a global lock. GetShared()
// is the primary read path — a memory-tier hit hands out a reference to the
// cached allocation itself (SharedBytes), not a copy; callers must treat the
// buffer as immutable. The byte-oriented Get() remains as a thin compat
// wrapper that copies out of GetShared().

#ifndef SAND_STORAGE_OBJECT_STORE_H_
#define SAND_STORAGE_OBJECT_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/clock.h"
#include "src/common/result.h"
#include "src/compress/lossy.h"
#include "src/obs/metrics.h"

namespace sand {

class WorkerPool;

// Key-hash shards per store. 16 shards keep lock collisions rare at the
// scheduler thread counts this repo runs (4-16 workers) while costing only
// 16 mutexes + map headers per store; see DESIGN.md "Object lifecycle and
// zero-copy invariants".
inline constexpr size_t kDefaultStoreShards = 16;

// Abstract key-value blob store. Implementations are thread-safe.
class ObjectStore {
 public:
  virtual ~ObjectStore() = default;

  // Stores `data` under `key`, replacing any existing object. Fails with
  // RESOURCE_EXHAUSTED when the store is over capacity.
  virtual Status Put(const std::string& key, std::span<const uint8_t> data) = 0;

  // Stores an already-refcounted buffer. Memory-resident stores adopt the
  // reference instead of copying the payload (the zero-copy promotion path).
  // Default: copies via Put.
  virtual Status PutShared(const std::string& key, SharedBytes data);

  // Atomically stores `data` only if `key` is absent. Returns true when the
  // object was inserted, false when the key already existed (the store is
  // left unchanged). Replaces racy Contains()-then-Put() sequences.
  virtual Result<bool> PutIfAbsent(const std::string& key, std::span<const uint8_t> data);

  // Primary read path: a reference to the stored bytes. Memory-resident
  // stores hand out the cached allocation itself; callers must not mutate
  // the pointee. Replaces racy Contains()-then-Get() sequences.
  virtual Result<SharedBytes> GetShared(const std::string& key) = 0;

  // Compat wrapper: copies the object out of GetShared().
  Result<std::vector<uint8_t>> Get(const std::string& key);

  virtual bool Contains(const std::string& key) = 0;

  // Size of the stored object, or NOT_FOUND.
  virtual Result<uint64_t> SizeOf(const std::string& key) = 0;

  virtual Status Delete(const std::string& key) = 0;

  virtual uint64_t UsedBytes() = 0;
  virtual uint64_t CapacityBytes() = 0;

  // All keys, sorted. Intended for recovery scans and tests.
  virtual std::vector<std::string> ListKeys() = 0;

  // Re-synchronizes in-memory accounting with durable state (no-op for
  // volatile stores). The crash-recovery hook.
  virtual Status Rescan() { return Status::Ok(); }
};

// In-memory store. Sharded: per-shard mutex + map, atomic usage counter.
class MemoryStore : public ObjectStore {
 public:
  explicit MemoryStore(uint64_t capacity_bytes = UINT64_MAX,
                       size_t num_shards = kDefaultStoreShards);

  Status Put(const std::string& key, std::span<const uint8_t> data) override;
  Status PutShared(const std::string& key, SharedBytes data) override;
  Result<bool> PutIfAbsent(const std::string& key, std::span<const uint8_t> data) override;
  Result<SharedBytes> GetShared(const std::string& key) override;
  bool Contains(const std::string& key) override;
  Result<uint64_t> SizeOf(const std::string& key) override;
  Status Delete(const std::string& key) override;
  uint64_t UsedBytes() override { return used_.load(std::memory_order_relaxed); }
  uint64_t CapacityBytes() override { return capacity_; }
  std::vector<std::string> ListKeys() override;

 private:
  struct Shard {
    std::mutex mutex;
    std::map<std::string, SharedBytes> objects;
  };

  Shard& ShardFor(const std::string& key) {
    return shards_[std::hash<std::string>{}(key) % shards_.size()];
  }
  // Reserves `incoming` bytes against capacity, releasing `existing` (the
  // replaced object's size) on success. Caller holds the shard lock.
  Status Reserve(uint64_t incoming, uint64_t existing, const char* what);

  const uint64_t capacity_;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> used_{0};
};

// Filesystem-backed store. Keys map to files under `root`; slashes in keys
// become directories. Usage is tracked in memory and rebuilt by Rescan().
// The size index is sharded like MemoryStore's map, so file I/O for
// different keys proceeds in parallel.
//
// Crash safety (DESIGN.md §10): every object file is payload + a CRC32
// footer, written to a private temp area and published with an atomic
// rename, so a mid-write crash leaves either the old object or nothing —
// never a torn file at the visible path. Reads and Rescan() verify the
// footer; an object that fails verification (or whose file vanished under
// a live index entry) is quarantined — moved aside under `.sand-quarantine`,
// dropped from the index, counted on `sand.store.disk.quarantined` — and
// surfaced as NotFound, never as corrupt bytes.
class DiskStore : public ObjectStore {
 public:
  // Bytes appended after the payload: magic(4) + crc32(4) + payload_size(8).
  static constexpr size_t kFooterSize = 16;
  // Reserved directory names under the root (rejected as key prefixes).
  static constexpr const char* kTmpDir = ".sand-tmp";
  static constexpr const char* kQuarantineDir = ".sand-quarantine";

  // Creates `root` if missing and scans any existing objects.
  static Result<std::unique_ptr<DiskStore>> Open(const std::string& root,
                                                 uint64_t capacity_bytes);

  Status Put(const std::string& key, std::span<const uint8_t> data) override;
  Result<bool> PutIfAbsent(const std::string& key, std::span<const uint8_t> data) override;
  Result<SharedBytes> GetShared(const std::string& key) override;
  bool Contains(const std::string& key) override;
  Result<uint64_t> SizeOf(const std::string& key) override;
  Status Delete(const std::string& key) override;
  uint64_t UsedBytes() override { return used_.load(std::memory_order_relaxed); }
  uint64_t CapacityBytes() override { return capacity_; }
  std::vector<std::string> ListKeys() override;

  // Re-walks the directory tree and rebuilds the key/size map; the recovery
  // path after a crash (paper §5.5). Verifies each file's CRC footer,
  // quarantines files that fail it, and clears abandoned temp files.
  Status Rescan() override;

  // Fault-injection surface: performs Put() up to but NOT including the
  // atomic rename — the payload lands in the temp area and the visible
  // store state is untouched, simulating a crash between write and publish.
  // Always returns Unavailable. Used by FaultInjectingStore and chaos tests.
  Status PutCrashBeforeRename(const std::string& key, std::span<const uint8_t> data);

  const std::string& root() const { return root_; }

 private:
  struct Shard {
    std::mutex mutex;
    std::map<std::string, uint64_t> sizes;
  };

  DiskStore(std::string root, uint64_t capacity_bytes);

  Shard& ShardFor(const std::string& key) {
    return shards_[std::hash<std::string>{}(key) % shards_.size()];
  }
  // Resolved file path for `key`, or InvalidArgument when the key is empty,
  // escapes the root (".." components), or names a reserved directory.
  Result<std::string> PathFor(const std::string& key) const;
  // Writes payload + footer to a fresh temp file and (unless
  // `crash_before_rename`) publishes it at `path` with an atomic rename.
  Status WriteObject(const std::string& path, std::span<const uint8_t> data,
                     bool crash_before_rename);
  // Drops `key` from the index and moves its file aside; caller must NOT
  // hold the key's shard lock. `reason` goes to the debug log.
  void Quarantine(const std::string& key, const std::string& path, const char* reason);
  // File move half of quarantining (no index access; safe under Rescan's
  // all-shards lock).
  void MoveToQuarantine(const std::string& path);

  const std::string root_;
  const uint64_t capacity_;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> used_{0};
  std::atomic<uint64_t> tmp_seq_{0};
};

// Traffic counters for RemoteStore (Fig. 14's network-savings metric).
struct RemoteTraffic {
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t read_ops = 0;
  uint64_t write_ops = 0;
};

// Wraps a backing store behind a bandwidth/latency model; each transfer
// sleeps for its modeled duration (scaled-down WAN link).
class RemoteStore : public ObjectStore {
 public:
  RemoteStore(std::shared_ptr<ObjectStore> backing, double bandwidth_bytes_per_sec,
              Nanos latency_per_op = 0);

  Status Put(const std::string& key, std::span<const uint8_t> data) override;
  Result<bool> PutIfAbsent(const std::string& key, std::span<const uint8_t> data) override;
  Result<SharedBytes> GetShared(const std::string& key) override;
  bool Contains(const std::string& key) override;
  Result<uint64_t> SizeOf(const std::string& key) override;
  Status Delete(const std::string& key) override;
  uint64_t UsedBytes() override;
  uint64_t CapacityBytes() override;
  std::vector<std::string> ListKeys() override;

  RemoteTraffic traffic();
  void ResetTraffic();

 private:
  void ChargeTransfer(uint64_t bytes);

  std::shared_ptr<ObjectStore> backing_;
  const double bandwidth_;
  const Nanos latency_;
  std::mutex mutex_;
  RemoteTraffic traffic_;
};

// Which tier a cached object should land in.
enum class Tier {
  kMemory,
  kDisk,
};

// Retry / degradation knobs for the TieredCache's disk tier (DESIGN.md §10).
// Transient infrastructure errors (UNAVAILABLE, DATA_LOSS) are retried with
// exponential backoff; a streak of terminally failed ops marks the tier
// offline (memory-only degradation) and a backoff clock admits one probe op
// per `reprobe_interval` until the tier recovers.
struct DiskFaultPolicy {
  int max_retries = 2;                       // retries per op, after the first try
  Nanos initial_backoff = 1 * kNanosPerMilli;
  double backoff_multiplier = 2.0;
  int offline_threshold = 3;                 // consecutive failed ops -> offline
  Nanos reprobe_interval = 100 * kNanosPerMilli;
};

// Two-level cache: a MemoryStore in front of a disk (or any) store. Reads
// check memory first and promote on hit from below; promotion reuses the
// disk tier's buffer (PutShared), so a promoted object is held once. The
// eviction *policy* lives in the SAND core; this class only provides the
// mechanics.
//
// Every instance publishes hit/miss/promotion/byte counters to the global
// obs registry ("sand.cache.*", visible at /.sand/metrics) and emits
// store_get/store_put trace spans; the pointers are resolved once at
// construction so the hot path stays a relaxed fetch_add.
// Fault tolerance (DESIGN.md §10): disk-tier ops that fail with UNAVAILABLE
// or DATA_LOSS are retried per the DiskFaultPolicy (counted on
// `sand.store.disk.retries`); a tier that keeps failing is marked offline
// (`sand.store.disk.degraded` gauge) and the cache degrades to memory-only —
// disk-destined puts land in memory best-effort, reads miss instead of
// erroring — re-probing the tier once per reprobe interval.
class TieredCache {
 public:
  TieredCache(std::shared_ptr<ObjectStore> memory, std::shared_ptr<ObjectStore> disk,
              DiskFaultPolicy fault_policy = {});

  Status Put(const std::string& key, std::span<const uint8_t> data, Tier tier);
  // Zero-copy insert: memory-resident tiers adopt the refcounted buffer
  // (falling through to a disk-tier copy when memory is full).
  Status PutShared(const std::string& key, SharedBytes data, Tier tier);
  // Single-call insert-if-absent into `tier` (falling through to disk when
  // memory is full). True when this call stored the object.
  Result<bool> PutIfAbsent(const std::string& key, std::span<const uint8_t> data, Tier tier);
  // Primary read path: memory-tier hits are zero-copy references.
  Result<SharedBytes> GetShared(const std::string& key);
  // Compat wrapper copying out of GetShared.
  Result<std::vector<uint8_t>> Get(const std::string& key);
  bool Contains(const std::string& key);
  Status Delete(const std::string& key);

  // --- Pinning (async demand path) ---------------------------------------
  // A pinned key refuses Delete and Demote: in-flight speculative objects
  // (a prefetched batch between materialization and consumption) must not
  // be reclaimed by the eviction policy mid-flight. Pins are counted, so
  // nested Pin/Unpin pairs compose; pinning an absent key is allowed (the
  // producer pins before Put so eviction can never win the race against a
  // fresh insert).
  void Pin(const std::string& key);
  void Unpin(const std::string& key);
  bool IsPinned(const std::string& key);

  // Moves an object from memory to disk (spill) keeping it cached. With
  // compression enabled the object is encoded on the way down (per the
  // policy's codec for its key class); when a worker pool is attached the
  // encode+spill runs asynchronously and Demote returns as soon as the work
  // is enqueued, so demotion never blocks the demand path.
  Status Demote(const std::string& key);

  // --- Transparent compression (DESIGN.md §11) ----------------------------
  // Installs the compression policy (and optionally the worker pool that
  // runs async demotions). Objects are encoded on Demote — and on disk-tier
  // Put when the policy says so — and transparently decoded on GetShared
  // hits; a compressed object that fails to decode is dropped and surfaces
  // as a miss, never as corrupt bytes. Call before the cache is shared with
  // concurrent readers (service startup), like the constructor arguments.
  void SetCompression(const CompressionPolicy& policy, WorkerPool* pool = nullptr);
  // Attaches/detaches the async demotion pool. The pool owner must detach
  // (nullptr) before destroying the pool; pass a drained pool only.
  void SetCompressionPool(WorkerPool* pool);
  bool compression_enabled() const {
    return compression_on_.load(std::memory_order_relaxed);
  }
  // True when disk-tier puts are encoded by the policy (not just Demote
  // spills); producers can then hand the cache raw bytes for every tier.
  bool compresses_disk_puts() const;
  // Records that `key` (an augmented-frame view) derives from `base_key`
  // (its decoded source frame) so the SVD codec can share basis factors.
  void NoteBaseObject(const std::string& key, const std::string& base_key);
  // Cumulative raw/encoded ratio of this cache's codec (1.0 when disabled
  // or before the first encode); the eviction planner's savings estimate.
  double CompressionRatio() const;

  // Durable write into the disk tier with the retry policy. Unlike
  // Put(.., Tier::kDisk) this does NOT fall back to memory — callers asked
  // for durability (checkpoints) — and fails Unavailable when the tier is
  // offline.
  Status PutDisk(const std::string& key, std::span<const uint8_t> data);

  // --- Peer probe (cluster reuse, DESIGN.md §14) --------------------------
  // Attaches a peer store (typically a cluster::ClusterStore routing keys
  // to their ring owners) probed as the third level after a memory AND disk
  // miss. A peer hit counts on sand.cluster.peer_hits / peer_bytes and is
  // promoted into memory; a peer miss or a dead peer reads as a plain cache
  // miss (sand.cluster.peer_misses), so the caller recomputes locally and
  // the job never fails on a vanished node. Successful puts are published
  // to the peer store best-effort so other nodes can find the object.
  // Call at startup, like SetCompression; pass nullptr to detach.
  void SetPeerStore(std::shared_ptr<ObjectStore> peer);
  bool has_peer() const;

  // True while the disk tier is marked offline (memory-only degradation).
  bool disk_degraded() const { return disk_offline_.load(std::memory_order_relaxed); }

  uint64_t MemoryUsedBytes() { return memory_->UsedBytes(); }
  uint64_t DiskUsedBytes() { return disk_->UsedBytes(); }
  uint64_t MemoryCapacityBytes() { return memory_->CapacityBytes(); }
  uint64_t DiskCapacityBytes() { return disk_->CapacityBytes(); }

  ObjectStore& memory() { return *memory_; }
  ObjectStore& disk() { return *disk_; }

 private:
  void UpdateUsageGauges();

  // The local (memory/disk) halves of the puts; the public methods wrap
  // them with the best-effort peer publish.
  Status PutLocal(const std::string& key, std::span<const uint8_t> data, Tier tier);
  Status PutSharedLocal(const std::string& key, SharedBytes data, Tier tier);
  Result<bool> PutIfAbsentLocal(const std::string& key, std::span<const uint8_t> data,
                                Tier tier);

  // Snapshot of the attached peer store (null when detached).
  std::shared_ptr<ObjectStore> PeerStore() const;
  // The third probe level: tries the peer on a local miss, returning
  // `miss` (counted on sand.cache.misses) when no peer is attached, the
  // peer misses, or the fetched object fails to decode.
  Result<SharedBytes> PeerOrMiss(const std::string& key, Result<SharedBytes> miss);
  // Best-effort publish of a freshly stored object to the peer store.
  void PublishToPeer(const std::string& key, SharedBytes data);

  // Snapshot of the codec engine (null when compression is disabled).
  std::shared_ptr<ObjectCodec> Codec() const;
  // Encodes `data` per the policy when `tier` is the disk tier and the
  // policy compresses disk puts; nullopt means "store raw".
  std::optional<std::vector<uint8_t>> MaybeEncodeForDisk(const std::string& key,
                                                         std::span<const uint8_t> data,
                                                         Tier tier);
  // Decodes `data` when it is a compressed container; passthrough otherwise.
  // An undecodable object returns the decode error (callers turn it into a
  // miss).
  Result<SharedBytes> MaybeDecode(SharedBytes data);
  // The encode+spill half of Demote (runs inline or on the worker pool).
  Status DemoteCompressed(const std::string& key);

  // Runs one disk-tier op with the retry policy and records the outcome in
  // the circuit breaker. `fn` must be idempotent (all store ops are).
  template <typename Fn>
  auto DiskOpWithRetry(Fn&& fn) -> decltype(fn());
  // True when a disk op may be attempted: tier online, or offline with an
  // expired reprobe clock (the caller becomes the probe).
  bool DiskAvailable();
  // Feeds the circuit breaker. `healthy` = the op did not end in a
  // transient infrastructure error (NotFound et al. count as healthy).
  void NoteDiskResult(bool healthy);

  std::shared_ptr<ObjectStore> memory_;
  std::shared_ptr<ObjectStore> disk_;
  const DiskFaultPolicy fault_policy_;

  // Disk-tier circuit breaker state.
  std::atomic<int> disk_failure_streak_{0};
  std::atomic<bool> disk_offline_{false};
  std::atomic<Nanos> disk_probe_at_{0};

  // Peer store (cluster probe level). Published under peer_mutex_ (cold
  // path: attach at startup, snapshot per miss/put).
  mutable std::mutex peer_mutex_;
  std::shared_ptr<ObjectStore> peer_;

  // key -> pin count; entries are erased at zero.
  std::mutex pin_mutex_;
  std::map<std::string, int> pins_;

  // Compression state. codec_ is published under codec_mutex_ (cold path);
  // compression_on_ is the hot-path gate, and the pool pointer is atomic so
  // the owner can detach it at shutdown without racing demotions.
  std::atomic<bool> compression_on_{false};
  mutable std::mutex codec_mutex_;
  std::shared_ptr<ObjectCodec> codec_;
  std::atomic<WorkerPool*> compress_pool_{nullptr};

  // Registry-backed counters (process-global, cached here).
  obs::Counter* memory_hits_;
  obs::Counter* disk_hits_;
  obs::Counter* misses_;
  obs::Counter* promotions_;
  obs::Counter* demotions_;
  obs::Counter* memory_puts_;
  obs::Counter* disk_puts_;
  obs::Counter* bytes_read_memory_;
  obs::Counter* bytes_read_disk_;
  obs::Counter* bytes_written_memory_;
  obs::Counter* bytes_written_disk_;
  obs::Counter* disk_retries_;
  obs::Counter* demote_failures_;
  obs::Counter* peer_hits_;
  obs::Counter* peer_misses_;
  obs::Counter* peer_bytes_;
  obs::Gauge* memory_used_;
  obs::Gauge* disk_used_;
  obs::Gauge* pinned_keys_;
  obs::Gauge* disk_degraded_gauge_;
};

}  // namespace sand

#endif  // SAND_STORAGE_OBJECT_STORE_H_
