#include "src/storage/fault_injection.h"

#include <chrono>
#include <thread>

#include "src/obs/metrics.h"

namespace sand {

namespace {

struct FaultMetrics {
  obs::Counter* injected;

  static const FaultMetrics& Get() {
    static const FaultMetrics metrics{
        obs::Registry::Get().GetCounter("sand.store.faults.injected"),
    };
    return metrics;
  }
};

}  // namespace

FaultInjectingStore::FaultInjectingStore(std::shared_ptr<ObjectStore> backing, uint64_t seed)
    : backing_(std::move(backing)), rng_(seed) {}

void FaultInjectingStore::AddRule(FaultRule rule) {
  std::lock_guard<std::mutex> lock(mutex_);
  rules_.push_back(ArmedRule{std::move(rule)});
}

void FaultInjectingStore::ClearRules() {
  std::lock_guard<std::mutex> lock(mutex_);
  rules_.clear();
}

FaultStats FaultInjectingStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

bool FaultInjectingStore::KindApplies(FaultKind kind, OpClass op) {
  switch (kind) {
    case FaultKind::kWriteError:
      return op == OpClass::kWrite || op == OpClass::kDelete;
    case FaultKind::kShortWrite:
    case FaultKind::kCrashBeforeRename:
      return op == OpClass::kWrite;
    case FaultKind::kReadError:
      return op == OpClass::kRead;
    case FaultKind::kLatency:
      return true;
  }
  return false;
}

std::optional<FaultKind> FaultInjectingStore::Evaluate(OpClass op, const std::string& key,
                                                       Nanos* latency_out) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.ops_seen;
  std::optional<FaultKind> fired;
  for (ArmedRule& armed : rules_) {
    const FaultRule& rule = armed.rule;
    if (!KindApplies(rule.kind, op)) {
      continue;
    }
    if (!rule.key_substring.empty() && key.find(rule.key_substring) == std::string::npos) {
      continue;
    }
    ++armed.matched;
    if (armed.fired >= rule.max_fires) {
      continue;
    }
    const bool fires = rule.every_nth > 0 ? (armed.matched % rule.every_nth == 0)
                                          : rng_.NextBool(rule.probability);
    if (!fires) {
      continue;
    }
    if (rule.kind == FaultKind::kLatency) {
      ++armed.fired;
      ++stats_.latency_injections;
      *latency_out += rule.latency;
      continue;  // latency composes with (and does not mask) other rules
    }
    if (fired.has_value()) {
      continue;  // first non-latency firing rule wins
    }
    ++armed.fired;
    fired = rule.kind;
    switch (rule.kind) {
      case FaultKind::kWriteError:
        ++stats_.write_errors;
        break;
      case FaultKind::kShortWrite:
        ++stats_.short_writes;
        break;
      case FaultKind::kReadError:
        ++stats_.read_errors;
        break;
      case FaultKind::kCrashBeforeRename:
        ++stats_.crashes;
        break;
      case FaultKind::kLatency:
        break;
    }
  }
  return fired;
}

Status FaultInjectingStore::CheckWrite(const std::string& key, std::span<const uint8_t> data) {
  Nanos latency = 0;
  std::optional<FaultKind> fault = Evaluate(OpClass::kWrite, key, &latency);
  if (latency > 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(latency));
  }
  if (!fault.has_value()) {
    return Status::Ok();
  }
  FaultMetrics::Get().injected->Add(1);
  switch (*fault) {
    case FaultKind::kWriteError:
      return Unavailable("injected write error: " + key);
    case FaultKind::kShortWrite:
      // A crash-safe backing discards the partial temp file, so nothing of
      // the torn write becomes visible — the caller just sees the failure.
      return DataLoss("injected short write: " + key);
    case FaultKind::kCrashBeforeRename:
      if (auto* disk = dynamic_cast<DiskStore*>(backing_.get())) {
        // Run the real write path and abandon it before the publish rename,
        // leaving the authentic crash debris (a temp file) behind.
        return disk->PutCrashBeforeRename(key, data);
      }
      return Unavailable("injected crash before publish: " + key);
    case FaultKind::kReadError:
    case FaultKind::kLatency:
      break;
  }
  return Internal("unhandled fault kind");
}

Status FaultInjectingStore::Put(const std::string& key, std::span<const uint8_t> data) {
  SAND_RETURN_IF_ERROR(CheckWrite(key, data));
  return backing_->Put(key, data);
}

Status FaultInjectingStore::PutShared(const std::string& key, SharedBytes data) {
  if (data == nullptr) {
    return InvalidArgument("PutShared: null buffer");
  }
  SAND_RETURN_IF_ERROR(CheckWrite(key, *data));
  return backing_->PutShared(key, std::move(data));
}

Result<bool> FaultInjectingStore::PutIfAbsent(const std::string& key,
                                              std::span<const uint8_t> data) {
  SAND_RETURN_IF_ERROR(CheckWrite(key, data));
  return backing_->PutIfAbsent(key, data);
}

Result<SharedBytes> FaultInjectingStore::GetShared(const std::string& key) {
  Nanos latency = 0;
  std::optional<FaultKind> fault = Evaluate(OpClass::kRead, key, &latency);
  if (latency > 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(latency));
  }
  if (fault.has_value()) {
    FaultMetrics::Get().injected->Add(1);
    return Unavailable("injected read error: " + key);
  }
  return backing_->GetShared(key);
}

bool FaultInjectingStore::Contains(const std::string& key) { return backing_->Contains(key); }

Result<uint64_t> FaultInjectingStore::SizeOf(const std::string& key) {
  return backing_->SizeOf(key);
}

Status FaultInjectingStore::Delete(const std::string& key) {
  Nanos latency = 0;
  std::optional<FaultKind> fault = Evaluate(OpClass::kDelete, key, &latency);
  if (latency > 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(latency));
  }
  if (fault.has_value()) {
    FaultMetrics::Get().injected->Add(1);
    return Unavailable("injected delete error: " + key);
  }
  return backing_->Delete(key);
}

uint64_t FaultInjectingStore::UsedBytes() { return backing_->UsedBytes(); }

uint64_t FaultInjectingStore::CapacityBytes() { return backing_->CapacityBytes(); }

std::vector<std::string> FaultInjectingStore::ListKeys() { return backing_->ListKeys(); }

Status FaultInjectingStore::Rescan() { return backing_->Rescan(); }

}  // namespace sand
