// Fault injection for the storage tier (DESIGN.md §10).
//
// FaultInjectingStore is an ObjectStore decorator that injects failures
// into the store it wraps, so the retry / degradation / recovery machinery
// stays testable as the system grows: chaos tests wrap the disk tier in one
// of these and assert that training loops still complete and that recovery
// rescans converge to a consistent index.
//
// Faults are described by FaultRules. A rule scopes itself by op class
// (writes vs reads), key substring, firing mode (deterministic every-nth
// matching op, or Bernoulli probability from a seeded RNG — runs are
// reproducible bit-for-bit for a given seed and op sequence), and an
// optional cap on total fires ("exactly one crash-before-rename").
//
// Kinds:
//   kWriteError        Put*/Delete fails UNAVAILABLE; backing untouched.
//   kShortWrite        Put* fails DATA_LOSS; backing untouched (a crash-safe
//                      store discards the partial temp file, so nothing
//                      becomes visible — the caller just sees a failed write).
//   kReadError         GetShared fails UNAVAILABLE; backing untouched.
//   kLatency           the op sleeps `latency` then proceeds normally.
//   kCrashBeforeRename Put* runs the real write path up to but NOT including
//                      the atomic publish rename (DiskStore backing: payload
//                      lands in the temp area; other backings: plain error),
//                      then fails UNAVAILABLE — the state a power cut between
//                      write and rename leaves on disk.

#ifndef SAND_STORAGE_FAULT_INJECTION_H_
#define SAND_STORAGE_FAULT_INJECTION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/rng.h"
#include "src/storage/object_store.h"

namespace sand {

enum class FaultKind {
  kWriteError,
  kShortWrite,
  kReadError,
  kLatency,
  kCrashBeforeRename,
};

struct FaultRule {
  FaultKind kind = FaultKind::kWriteError;
  // Bernoulli fire chance per matching op (used when every_nth == 0).
  double probability = 1.0;
  // Fire deterministically on every nth matching op (1-based; 0 = off).
  uint64_t every_nth = 0;
  // Only ops whose key contains this substring match; empty matches all.
  std::string key_substring;
  // Disarm after this many fires (e.g. 1 = a single injected crash).
  uint64_t max_fires = UINT64_MAX;
  // Injected delay for kLatency.
  Nanos latency = 0;
};

struct FaultStats {
  uint64_t write_errors = 0;
  uint64_t short_writes = 0;
  uint64_t read_errors = 0;
  uint64_t latency_injections = 0;
  uint64_t crashes = 0;
  uint64_t ops_seen = 0;

  uint64_t total_faults() const {
    return write_errors + short_writes + read_errors + crashes;
  }
};

// Thread-safe; rule evaluation serializes on one mutex (the wrapped store
// op itself runs outside it). Metadata ops (Contains, SizeOf, ListKeys,
// UsedBytes, CapacityBytes, Rescan) always pass through unfaulted.
class FaultInjectingStore : public ObjectStore {
 public:
  explicit FaultInjectingStore(std::shared_ptr<ObjectStore> backing,
                               uint64_t seed = 0x5eedf417);

  void AddRule(FaultRule rule);
  void ClearRules();
  FaultStats stats() const;

  ObjectStore& backing() { return *backing_; }

  // --- ObjectStore --------------------------------------------------------
  Status Put(const std::string& key, std::span<const uint8_t> data) override;
  Status PutShared(const std::string& key, SharedBytes data) override;
  Result<bool> PutIfAbsent(const std::string& key, std::span<const uint8_t> data) override;
  Result<SharedBytes> GetShared(const std::string& key) override;
  bool Contains(const std::string& key) override;
  Result<uint64_t> SizeOf(const std::string& key) override;
  Status Delete(const std::string& key) override;
  uint64_t UsedBytes() override;
  uint64_t CapacityBytes() override;
  std::vector<std::string> ListKeys() override;
  Status Rescan() override;

 private:
  enum class OpClass { kWrite, kRead, kDelete };

  struct ArmedRule {
    FaultRule rule;
    uint64_t matched = 0;
    uint64_t fired = 0;
  };

  static bool KindApplies(FaultKind kind, OpClass op);
  // Evaluates the rules for one op. Latency rules accumulate into
  // `latency_out` (slept by the caller, outside the lock); the first other
  // firing rule wins and is returned.
  std::optional<FaultKind> Evaluate(OpClass op, const std::string& key, Nanos* latency_out);
  // Shared fault front-half for the Put family.
  Status CheckWrite(const std::string& key, std::span<const uint8_t> data);

  std::shared_ptr<ObjectStore> backing_;

  mutable std::mutex mutex_;
  Rng rng_;
  std::vector<ArmedRule> rules_;
  FaultStats stats_;
};

}  // namespace sand

#endif  // SAND_STORAGE_FAULT_INJECTION_H_
