// Live video ingestion (paper §5.1, input_source: streaming).
//
// Online-learning pipelines train on video that keeps arriving (live
// streams, upload queues). LiveIngestStore wraps a backing store and makes
// objects visible only after their publish time on a manual ingest clock —
// the planner then snapshots the visible set per k-epoch chunk, so each
// chunk trains on everything that has arrived so far.

#ifndef SAND_STORAGE_LIVE_INGEST_H_
#define SAND_STORAGE_LIVE_INGEST_H_

#include <map>
#include <memory>
#include <mutex>

#include "src/common/clock.h"
#include "src/storage/object_store.h"

namespace sand {

class LiveIngestStore : public ObjectStore {
 public:
  explicit LiveIngestStore(std::shared_ptr<ObjectStore> backing)
      : backing_(std::move(backing)) {}

  // Publishes `key` at ingest-clock time `publish_at`. The object is
  // stored immediately but invisible until the clock reaches that time.
  Status PutAt(const std::string& key, std::span<const uint8_t> data, Nanos publish_at);

  // The ingest clock. Advancing it makes pending objects visible.
  Nanos Now();
  void AdvanceTo(Nanos time);

  // Keys that are stored but not yet visible.
  std::vector<std::string> PendingKeys();

  // --- ObjectStore (visibility-filtered) -----------------------------------
  // Put() publishes immediately (publish_at = current time).
  Status Put(const std::string& key, std::span<const uint8_t> data) override;
  Result<SharedBytes> GetShared(const std::string& key) override;
  bool Contains(const std::string& key) override;
  Result<uint64_t> SizeOf(const std::string& key) override;
  Status Delete(const std::string& key) override;
  uint64_t UsedBytes() override { return backing_->UsedBytes(); }
  uint64_t CapacityBytes() override { return backing_->CapacityBytes(); }
  std::vector<std::string> ListKeys() override;

 private:
  bool VisibleLocked(const std::string& key) const;

  std::shared_ptr<ObjectStore> backing_;
  std::mutex mutex_;
  Nanos now_ = 0;
  std::map<std::string, Nanos> publish_times_;
};

}  // namespace sand

#endif  // SAND_STORAGE_LIVE_INGEST_H_
