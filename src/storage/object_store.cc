#include "src/storage/object_store.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "src/common/strings.h"
#include "src/obs/trace.h"

namespace sand {

namespace fs = std::filesystem;

namespace {

// Class-level store op counters (all instances of a store class share
// them; the "sand.cache.*" family carries the per-tier cache semantics).
struct StoreMetrics {
  obs::Counter* gets;
  obs::Counter* puts;
  obs::Counter* bytes_read;
  obs::Counter* bytes_written;

  static const StoreMetrics& Memory() {
    static const StoreMetrics metrics{
        obs::Registry::Get().GetCounter("sand.store.memory.gets"),
        obs::Registry::Get().GetCounter("sand.store.memory.puts"),
        obs::Registry::Get().GetCounter("sand.store.memory.bytes_read"),
        obs::Registry::Get().GetCounter("sand.store.memory.bytes_written"),
    };
    return metrics;
  }
  static const StoreMetrics& Disk() {
    static const StoreMetrics metrics{
        obs::Registry::Get().GetCounter("sand.store.disk.gets"),
        obs::Registry::Get().GetCounter("sand.store.disk.puts"),
        obs::Registry::Get().GetCounter("sand.store.disk.bytes_read"),
        obs::Registry::Get().GetCounter("sand.store.disk.bytes_written"),
    };
    return metrics;
  }
};

}  // namespace

// --- ObjectStore defaults ----------------------------------------------------

Status ObjectStore::PutShared(const std::string& key, SharedBytes data) {
  if (data == nullptr) {
    return InvalidArgument("PutShared: null buffer");
  }
  return Put(key, *data);
}

Result<bool> ObjectStore::PutIfAbsent(const std::string& key, std::span<const uint8_t> data) {
  // Best-effort default for stores without native support; sharded stores
  // override this with an atomic check-and-insert.
  if (Contains(key)) {
    return false;
  }
  SAND_RETURN_IF_ERROR(Put(key, data));
  return true;
}

Result<std::vector<uint8_t>> ObjectStore::Get(const std::string& key) {
  SAND_ASSIGN_OR_RETURN(SharedBytes shared, GetShared(key));
  return std::vector<uint8_t>(shared->begin(), shared->end());
}

// --- MemoryStore -----------------------------------------------------------

MemoryStore::MemoryStore(uint64_t capacity_bytes, size_t num_shards)
    : capacity_(capacity_bytes), shards_(std::max<size_t>(num_shards, 1)) {}

Status MemoryStore::Reserve(uint64_t incoming, uint64_t existing, const char* what) {
  uint64_t total = used_.fetch_add(incoming, std::memory_order_relaxed) + incoming;
  if (total - existing > capacity_) {
    used_.fetch_sub(incoming, std::memory_order_relaxed);
    return ResourceExhausted(StrFormat("%s over capacity (%llu + %llu > %llu)", what,
                                       static_cast<unsigned long long>(total - incoming - existing),
                                       static_cast<unsigned long long>(incoming),
                                       static_cast<unsigned long long>(capacity_)));
  }
  used_.fetch_sub(existing, std::memory_order_relaxed);
  return Status::Ok();
}

Status MemoryStore::PutShared(const std::string& key, SharedBytes data) {
  if (data == nullptr) {
    return InvalidArgument("PutShared: null buffer");
  }
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.objects.find(key);
  uint64_t existing = it != shard.objects.end() ? it->second->size() : 0;
  SAND_RETURN_IF_ERROR(Reserve(data->size(), existing, "memory store"));
  StoreMetrics::Memory().puts->Add(1);
  StoreMetrics::Memory().bytes_written->Add(data->size());
  shard.objects[key] = std::move(data);
  return Status::Ok();
}

Status MemoryStore::Put(const std::string& key, std::span<const uint8_t> data) {
  return PutShared(key, std::make_shared<std::vector<uint8_t>>(data.begin(), data.end()));
}

Result<bool> MemoryStore::PutIfAbsent(const std::string& key, std::span<const uint8_t> data) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.objects.count(key) > 0) {
    return false;
  }
  SAND_RETURN_IF_ERROR(Reserve(data.size(), 0, "memory store"));
  StoreMetrics::Memory().puts->Add(1);
  StoreMetrics::Memory().bytes_written->Add(data.size());
  shard.objects.emplace(key,
                        std::make_shared<std::vector<uint8_t>>(data.begin(), data.end()));
  return true;
}

Result<SharedBytes> MemoryStore::GetShared(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.objects.find(key);
  if (it == shard.objects.end()) {
    return NotFound("no object: " + key);
  }
  StoreMetrics::Memory().gets->Add(1);
  StoreMetrics::Memory().bytes_read->Add(it->second->size());
  return it->second;  // reference to the cached allocation, no copy
}

bool MemoryStore::Contains(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.objects.count(key) > 0;
}

Result<uint64_t> MemoryStore::SizeOf(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.objects.find(key);
  if (it == shard.objects.end()) {
    return NotFound("no object: " + key);
  }
  return static_cast<uint64_t>(it->second->size());
}

Status MemoryStore::Delete(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.objects.find(key);
  if (it == shard.objects.end()) {
    return NotFound("no object: " + key);
  }
  used_.fetch_sub(it->second->size(), std::memory_order_relaxed);
  shard.objects.erase(it);
  return Status::Ok();
}

std::vector<std::string> MemoryStore::ListKeys() {
  std::vector<std::string> keys;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, value] : shard.objects) {
      keys.push_back(key);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

// --- DiskStore ---------------------------------------------------------------

DiskStore::DiskStore(std::string root, uint64_t capacity_bytes)
    : root_(std::move(root)), capacity_(capacity_bytes), shards_(kDefaultStoreShards) {}

Result<std::unique_ptr<DiskStore>> DiskStore::Open(const std::string& root,
                                                   uint64_t capacity_bytes) {
  std::error_code ec;
  fs::create_directories(root, ec);
  if (ec) {
    return Unavailable("cannot create store root " + root + ": " + ec.message());
  }
  auto store = std::unique_ptr<DiskStore>(new DiskStore(root, capacity_bytes));
  Status status = store->Rescan();
  if (!status.ok()) {
    return status;
  }
  return store;
}

std::string DiskStore::PathFor(const std::string& key) const {
  // Keys may contain '/'; they map to subdirectories. Leading slashes are
  // stripped so keys remain inside the root.
  std::string clean;
  clean.reserve(key.size());
  for (char c : key) {
    if (clean.empty() && c == '/') {
      continue;
    }
    clean.push_back(c);
  }
  return root_ + "/" + clean;
}

Status DiskStore::WriteObject(const std::string& key, std::span<const uint8_t> data) {
  std::string path = PathFor(key);
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  if (ec) {
    return Unavailable("mkdir failed for " + path + ": " + ec.message());
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Unavailable("cannot open " + path + " for writing");
  }
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) {
    return DataLoss("short write to " + path);
  }
  return Status::Ok();
}

Status DiskStore::Put(const std::string& key, std::span<const uint8_t> data) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.sizes.find(key);
  uint64_t existing = it != shard.sizes.end() ? it->second : 0;
  uint64_t total = used_.fetch_add(data.size(), std::memory_order_relaxed) + data.size();
  if (total - existing > capacity_) {
    used_.fetch_sub(data.size(), std::memory_order_relaxed);
    return ResourceExhausted("disk store over capacity");
  }
  Status written = WriteObject(key, data);
  if (!written.ok()) {
    used_.fetch_sub(data.size(), std::memory_order_relaxed);
    return written;
  }
  used_.fetch_sub(existing, std::memory_order_relaxed);
  StoreMetrics::Disk().puts->Add(1);
  StoreMetrics::Disk().bytes_written->Add(data.size());
  shard.sizes[key] = data.size();
  return Status::Ok();
}

Result<bool> DiskStore::PutIfAbsent(const std::string& key, std::span<const uint8_t> data) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.sizes.count(key) > 0) {
    return false;
  }
  uint64_t total = used_.fetch_add(data.size(), std::memory_order_relaxed) + data.size();
  if (total > capacity_) {
    used_.fetch_sub(data.size(), std::memory_order_relaxed);
    return ResourceExhausted("disk store over capacity");
  }
  Status written = WriteObject(key, data);
  if (!written.ok()) {
    used_.fetch_sub(data.size(), std::memory_order_relaxed);
    return written;
  }
  StoreMetrics::Disk().puts->Add(1);
  StoreMetrics::Disk().bytes_written->Add(data.size());
  shard.sizes[key] = data.size();
  return true;
}

Result<SharedBytes> DiskStore::GetShared(const std::string& key) {
  {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.sizes.find(key) == shard.sizes.end()) {
      return NotFound("no object: " + key);
    }
  }
  // Read outside the lock so different keys stream from disk in parallel.
  std::ifstream in(PathFor(key), std::ios::binary);
  if (!in) {
    return DataLoss("object file missing: " + key);
  }
  std::vector<uint8_t> data((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
  StoreMetrics::Disk().gets->Add(1);
  StoreMetrics::Disk().bytes_read->Add(data.size());
  return MakeSharedBytes(std::move(data));
}

bool DiskStore::Contains(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.sizes.count(key) > 0;
}

Result<uint64_t> DiskStore::SizeOf(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.sizes.find(key);
  if (it == shard.sizes.end()) {
    return NotFound("no object: " + key);
  }
  return it->second;
}

Status DiskStore::Delete(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.sizes.find(key);
  if (it == shard.sizes.end()) {
    return NotFound("no object: " + key);
  }
  std::error_code ec;
  fs::remove(PathFor(key), ec);
  used_.fetch_sub(it->second, std::memory_order_relaxed);
  shard.sizes.erase(it);
  return Status::Ok();
}

std::vector<std::string> DiskStore::ListKeys() {
  std::vector<std::string> keys;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, size] : shard.sizes) {
      keys.push_back(key);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

Status DiskStore::Rescan() {
  // Recovery path: take every shard lock (in index order, so per-key ops
  // holding a single shard lock cannot deadlock against us), rebuild the
  // whole index from the directory tree atomically.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (Shard& shard : shards_) {
    locks.emplace_back(shard.mutex);
    shard.sizes.clear();
  }
  uint64_t used = 0;
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(root_, ec);
       !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (!it->is_regular_file(ec)) {
      continue;
    }
    std::string rel = fs::relative(it->path(), root_, ec).generic_string();
    uint64_t size = static_cast<uint64_t>(it->file_size(ec));
    ShardFor(rel).sizes[rel] = size;
    used += size;
  }
  used_.store(used, std::memory_order_relaxed);
  if (ec) {
    return Unavailable("rescan failed: " + ec.message());
  }
  return Status::Ok();
}

// --- RemoteStore -------------------------------------------------------------

RemoteStore::RemoteStore(std::shared_ptr<ObjectStore> backing, double bandwidth_bytes_per_sec,
                         Nanos latency_per_op)
    : backing_(std::move(backing)), bandwidth_(bandwidth_bytes_per_sec), latency_(latency_per_op) {}

void RemoteStore::ChargeTransfer(uint64_t bytes) {
  Nanos transfer = latency_;
  if (bandwidth_ > 0) {
    transfer += static_cast<Nanos>(static_cast<double>(bytes) / bandwidth_ * kNanosPerSecond);
  }
  if (transfer > 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(transfer));
  }
}

Status RemoteStore::Put(const std::string& key, std::span<const uint8_t> data) {
  ChargeTransfer(data.size());
  Status status = backing_->Put(key, data);
  if (status.ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    traffic_.bytes_written += data.size();
    ++traffic_.write_ops;
  }
  return status;
}

Result<bool> RemoteStore::PutIfAbsent(const std::string& key, std::span<const uint8_t> data) {
  ChargeTransfer(data.size());
  Result<bool> inserted = backing_->PutIfAbsent(key, data);
  if (inserted.ok() && *inserted) {
    std::lock_guard<std::mutex> lock(mutex_);
    traffic_.bytes_written += data.size();
    ++traffic_.write_ops;
  }
  return inserted;
}

Result<SharedBytes> RemoteStore::GetShared(const std::string& key) {
  Result<SharedBytes> result = backing_->GetShared(key);
  if (result.ok()) {
    ChargeTransfer((*result)->size());
    std::lock_guard<std::mutex> lock(mutex_);
    traffic_.bytes_read += (*result)->size();
    ++traffic_.read_ops;
  }
  return result;
}

bool RemoteStore::Contains(const std::string& key) { return backing_->Contains(key); }

Result<uint64_t> RemoteStore::SizeOf(const std::string& key) { return backing_->SizeOf(key); }

Status RemoteStore::Delete(const std::string& key) { return backing_->Delete(key); }

uint64_t RemoteStore::UsedBytes() { return backing_->UsedBytes(); }

uint64_t RemoteStore::CapacityBytes() { return backing_->CapacityBytes(); }

std::vector<std::string> RemoteStore::ListKeys() { return backing_->ListKeys(); }

RemoteTraffic RemoteStore::traffic() {
  std::lock_guard<std::mutex> lock(mutex_);
  return traffic_;
}

void RemoteStore::ResetTraffic() {
  std::lock_guard<std::mutex> lock(mutex_);
  traffic_ = RemoteTraffic{};
}

// --- TieredCache -------------------------------------------------------------

TieredCache::TieredCache(std::shared_ptr<ObjectStore> memory, std::shared_ptr<ObjectStore> disk)
    : memory_(std::move(memory)),
      disk_(std::move(disk)),
      memory_hits_(obs::Registry::Get().GetCounter("sand.cache.memory.hits")),
      disk_hits_(obs::Registry::Get().GetCounter("sand.cache.disk.hits")),
      misses_(obs::Registry::Get().GetCounter("sand.cache.misses")),
      promotions_(obs::Registry::Get().GetCounter("sand.cache.promotions")),
      demotions_(obs::Registry::Get().GetCounter("sand.cache.demotions")),
      memory_puts_(obs::Registry::Get().GetCounter("sand.cache.memory.puts")),
      disk_puts_(obs::Registry::Get().GetCounter("sand.cache.disk.puts")),
      bytes_read_memory_(obs::Registry::Get().GetCounter("sand.cache.memory.bytes_read")),
      bytes_read_disk_(obs::Registry::Get().GetCounter("sand.cache.disk.bytes_read")),
      bytes_written_memory_(obs::Registry::Get().GetCounter("sand.cache.memory.bytes_written")),
      bytes_written_disk_(obs::Registry::Get().GetCounter("sand.cache.disk.bytes_written")),
      memory_used_(obs::Registry::Get().GetGauge("sand.cache.memory.used_bytes")),
      disk_used_(obs::Registry::Get().GetGauge("sand.cache.disk.used_bytes")),
      pinned_keys_(obs::Registry::Get().GetGauge("sand.cache.pinned_keys")) {}

void TieredCache::UpdateUsageGauges() {
  memory_used_->Set(static_cast<int64_t>(memory_->UsedBytes()));
  disk_used_->Set(static_cast<int64_t>(disk_->UsedBytes()));
}

Status TieredCache::Put(const std::string& key, std::span<const uint8_t> data, Tier tier) {
  SAND_SPAN("store_put");
  Status status;
  if (tier == Tier::kMemory) {
    status = memory_->Put(key, data);
    if (status.ok()) {
      memory_puts_->Add(1);
      bytes_written_memory_->Add(data.size());
      UpdateUsageGauges();
      return status;
    }
    // Memory full: fall through to disk rather than failing the pipeline.
  }
  status = disk_->Put(key, data);
  if (status.ok()) {
    disk_puts_->Add(1);
    bytes_written_disk_->Add(data.size());
    UpdateUsageGauges();
  }
  return status;
}

Status TieredCache::PutShared(const std::string& key, SharedBytes data, Tier tier) {
  SAND_SPAN("store_put");
  if (tier == Tier::kMemory) {
    Status status = memory_->PutShared(key, data);
    if (status.ok()) {
      memory_puts_->Add(1);
      bytes_written_memory_->Add(data->size());
      UpdateUsageGauges();
      return status;
    }
    // Memory full: fall through to disk rather than failing the pipeline.
  }
  Status status = disk_->PutShared(key, data);
  if (status.ok()) {
    disk_puts_->Add(1);
    bytes_written_disk_->Add(data->size());
    UpdateUsageGauges();
  }
  return status;
}

Result<bool> TieredCache::PutIfAbsent(const std::string& key, std::span<const uint8_t> data,
                                      Tier tier) {
  SAND_SPAN("store_put");
  if (tier == Tier::kMemory) {
    Result<bool> inserted = memory_->PutIfAbsent(key, data);
    if (inserted.ok()) {
      if (*inserted) {
        memory_puts_->Add(1);
        bytes_written_memory_->Add(data.size());
        UpdateUsageGauges();
      }
      return inserted;
    }
    // Memory full: fall through to disk rather than failing the pipeline.
  }
  Result<bool> inserted = disk_->PutIfAbsent(key, data);
  if (inserted.ok() && *inserted) {
    disk_puts_->Add(1);
    bytes_written_disk_->Add(data.size());
    UpdateUsageGauges();
  }
  return inserted;
}

Result<SharedBytes> TieredCache::GetShared(const std::string& key) {
  SAND_SPAN("store_get");
  Result<SharedBytes> hot = memory_->GetShared(key);
  if (hot.ok()) {
    memory_hits_->Add(1);
    bytes_read_memory_->Add((*hot)->size());
    return hot;
  }
  Result<SharedBytes> cold = disk_->GetShared(key);
  if (cold.ok()) {
    disk_hits_->Add(1);
    bytes_read_disk_->Add((*cold)->size());
    // Best-effort promotion reusing the just-read buffer (no copy); ignore
    // failure (memory may be full).
    if (memory_->PutShared(key, *cold).ok()) {
      promotions_->Add(1);
      UpdateUsageGauges();
    }
  } else {
    misses_->Add(1);
  }
  return cold;
}

Result<std::vector<uint8_t>> TieredCache::Get(const std::string& key) {
  SAND_ASSIGN_OR_RETURN(SharedBytes shared, GetShared(key));
  return std::vector<uint8_t>(shared->begin(), shared->end());
}

bool TieredCache::Contains(const std::string& key) {
  return memory_->Contains(key) || disk_->Contains(key);
}

void TieredCache::Pin(const std::string& key) {
  std::lock_guard<std::mutex> lock(pin_mutex_);
  ++pins_[key];
  pinned_keys_->Set(static_cast<int64_t>(pins_.size()));
}

void TieredCache::Unpin(const std::string& key) {
  std::lock_guard<std::mutex> lock(pin_mutex_);
  auto it = pins_.find(key);
  if (it == pins_.end()) {
    return;
  }
  if (--it->second <= 0) {
    pins_.erase(it);
  }
  pinned_keys_->Set(static_cast<int64_t>(pins_.size()));
}

bool TieredCache::IsPinned(const std::string& key) {
  std::lock_guard<std::mutex> lock(pin_mutex_);
  return pins_.count(key) > 0;
}

Status TieredCache::Delete(const std::string& key) {
  if (IsPinned(key)) {
    return FailedPrecondition("pinned: " + key);
  }
  bool any = false;
  if (memory_->Delete(key).ok()) {
    any = true;
  }
  if (disk_->Delete(key).ok()) {
    any = true;
  }
  return any ? Status::Ok() : NotFound("no object: " + key);
}

Status TieredCache::Demote(const std::string& key) {
  if (IsPinned(key)) {
    return FailedPrecondition("pinned: " + key);
  }
  SAND_ASSIGN_OR_RETURN(SharedBytes data, memory_->GetShared(key));
  SAND_RETURN_IF_ERROR(disk_->Put(key, *data));
  SAND_RETURN_IF_ERROR(memory_->Delete(key));
  demotions_->Add(1);
  bytes_written_disk_->Add(data->size());
  UpdateUsageGauges();
  return Status::Ok();
}

}  // namespace sand
