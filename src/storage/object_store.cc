#include "src/storage/object_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string_view>
#include <thread>

#include "src/common/crc32.h"
#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/common/worker_pool.h"
#include "src/obs/trace.h"

namespace sand {

namespace fs = std::filesystem;

namespace {

// Class-level store op counters (all instances of a store class share
// them; the "sand.cache.*" family carries the per-tier cache semantics).
struct StoreMetrics {
  obs::Counter* gets;
  obs::Counter* puts;
  obs::Counter* bytes_read;
  obs::Counter* bytes_written;

  static const StoreMetrics& Memory() {
    static const StoreMetrics metrics{
        obs::Registry::Get().GetCounter("sand.store.memory.gets"),
        obs::Registry::Get().GetCounter("sand.store.memory.puts"),
        obs::Registry::Get().GetCounter("sand.store.memory.bytes_read"),
        obs::Registry::Get().GetCounter("sand.store.memory.bytes_written"),
    };
    return metrics;
  }
  static const StoreMetrics& Disk() {
    static const StoreMetrics metrics{
        obs::Registry::Get().GetCounter("sand.store.disk.gets"),
        obs::Registry::Get().GetCounter("sand.store.disk.puts"),
        obs::Registry::Get().GetCounter("sand.store.disk.bytes_read"),
        obs::Registry::Get().GetCounter("sand.store.disk.bytes_written"),
    };
    return metrics;
  }
};

// Objects dropped from the index because their file failed CRC/footer
// verification or vanished while indexed (DESIGN.md §10).
obs::Counter* DiskQuarantined() {
  static obs::Counter* counter =
      obs::Registry::Get().GetCounter("sand.store.disk.quarantined");
  return counter;
}

// Delta-based capacity reservation shared by the sharded stores: only the
// growth (incoming - existing) is reserved, and a shrink releases the
// difference immediately — so a same-size overwrite is a no-op against the
// capacity check. The old fetch_add(incoming)-then-credit-existing scheme
// transiently double-counted overwrites, making concurrent same-size
// overwrites near capacity spuriously fail with ResourceExhausted.
// Caller holds the shard lock for the key being (re)written.
Status ReserveDelta(std::atomic<uint64_t>& used, uint64_t capacity, uint64_t incoming,
                    uint64_t existing, const char* what) {
  if (incoming <= existing) {
    used.fetch_sub(existing - incoming, std::memory_order_relaxed);
    return Status::Ok();
  }
  const uint64_t delta = incoming - existing;
  const uint64_t prev = used.fetch_add(delta, std::memory_order_relaxed);
  if (prev + delta > capacity) {
    used.fetch_sub(delta, std::memory_order_relaxed);
    return ResourceExhausted(StrFormat("%s over capacity (%llu + %llu > %llu)", what,
                                       static_cast<unsigned long long>(prev),
                                       static_cast<unsigned long long>(incoming),
                                       static_cast<unsigned long long>(capacity)));
  }
  return Status::Ok();
}

// Undoes a successful ReserveDelta after the write it covered failed (the
// previously visible object, if any, is still the live one).
void RollbackReserve(std::atomic<uint64_t>& used, uint64_t incoming, uint64_t existing) {
  if (incoming >= existing) {
    used.fetch_sub(incoming - existing, std::memory_order_relaxed);
  } else {
    used.fetch_add(existing - incoming, std::memory_order_relaxed);
  }
}

// --- DiskStore object-file footer -------------------------------------------
// Layout: [payload][magic(4) "SOB1"][crc32-of-payload(4, LE)][payload_size(8, LE)]

constexpr uint8_t kFooterMagic[4] = {'S', 'O', 'B', '1'};

std::array<uint8_t, DiskStore::kFooterSize> MakeFooter(std::span<const uint8_t> payload) {
  std::array<uint8_t, DiskStore::kFooterSize> footer{};
  std::memcpy(footer.data(), kFooterMagic, 4);
  const uint32_t crc = Crc32(payload);
  const uint64_t size = payload.size();
  for (int i = 0; i < 4; ++i) {
    footer[4 + static_cast<size_t>(i)] = static_cast<uint8_t>((crc >> (8 * i)) & 0xFF);
  }
  for (int i = 0; i < 8; ++i) {
    footer[8 + static_cast<size_t>(i)] = static_cast<uint8_t>((size >> (8 * i)) & 0xFF);
  }
  return footer;
}

// Checks that `file` is a well-formed object (payload + matching footer);
// on success stores the payload length in `payload_size`.
bool ValidateObjectBytes(std::span<const uint8_t> file, uint64_t* payload_size) {
  if (file.size() < DiskStore::kFooterSize) {
    return false;
  }
  const uint8_t* footer = file.data() + file.size() - DiskStore::kFooterSize;
  if (std::memcmp(footer, kFooterMagic, 4) != 0) {
    return false;
  }
  uint32_t crc = 0;
  for (int i = 3; i >= 0; --i) {
    crc = (crc << 8) | footer[4 + static_cast<size_t>(i)];
  }
  uint64_t size = 0;
  for (int i = 7; i >= 0; --i) {
    size = (size << 8) | footer[8 + static_cast<size_t>(i)];
  }
  if (size != file.size() - DiskStore::kFooterSize) {
    return false;
  }
  if (Crc32(file.first(size)) != crc) {
    return false;
  }
  *payload_size = size;
  return true;
}

Status WriteAll(int fd, std::span<const uint8_t> bytes, const std::string& path) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return DataLoss("short write to " + path + ": " + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::Ok();
}

// Whole file as bytes, or nullopt when it cannot be opened/read.
std::optional<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return std::nullopt;
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  if (in.bad()) {
    return std::nullopt;
  }
  return bytes;
}

}  // namespace

// --- ObjectStore defaults ----------------------------------------------------

Status ObjectStore::PutShared(const std::string& key, SharedBytes data) {
  if (data == nullptr) {
    return InvalidArgument("PutShared: null buffer");
  }
  return Put(key, *data);
}

Result<bool> ObjectStore::PutIfAbsent(const std::string& key, std::span<const uint8_t> data) {
  // Best-effort default for stores without native support; sharded stores
  // override this with an atomic check-and-insert.
  if (Contains(key)) {
    return false;
  }
  SAND_RETURN_IF_ERROR(Put(key, data));
  return true;
}

Result<std::vector<uint8_t>> ObjectStore::Get(const std::string& key) {
  SAND_ASSIGN_OR_RETURN(SharedBytes shared, GetShared(key));
  return std::vector<uint8_t>(shared->begin(), shared->end());
}

// --- MemoryStore -----------------------------------------------------------

MemoryStore::MemoryStore(uint64_t capacity_bytes, size_t num_shards)
    : capacity_(capacity_bytes), shards_(std::max<size_t>(num_shards, 1)) {}

Status MemoryStore::Reserve(uint64_t incoming, uint64_t existing, const char* what) {
  return ReserveDelta(used_, capacity_, incoming, existing, what);
}

Status MemoryStore::PutShared(const std::string& key, SharedBytes data) {
  if (data == nullptr) {
    return InvalidArgument("PutShared: null buffer");
  }
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.objects.find(key);
  uint64_t existing = it != shard.objects.end() ? it->second->size() : 0;
  SAND_RETURN_IF_ERROR(Reserve(data->size(), existing, "memory store"));
  StoreMetrics::Memory().puts->Add(1);
  StoreMetrics::Memory().bytes_written->Add(data->size());
  shard.objects[key] = std::move(data);
  return Status::Ok();
}

Status MemoryStore::Put(const std::string& key, std::span<const uint8_t> data) {
  return PutShared(key, std::make_shared<std::vector<uint8_t>>(data.begin(), data.end()));
}

Result<bool> MemoryStore::PutIfAbsent(const std::string& key, std::span<const uint8_t> data) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.objects.count(key) > 0) {
    return false;
  }
  SAND_RETURN_IF_ERROR(Reserve(data.size(), 0, "memory store"));
  StoreMetrics::Memory().puts->Add(1);
  StoreMetrics::Memory().bytes_written->Add(data.size());
  shard.objects.emplace(key,
                        std::make_shared<std::vector<uint8_t>>(data.begin(), data.end()));
  return true;
}

Result<SharedBytes> MemoryStore::GetShared(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.objects.find(key);
  if (it == shard.objects.end()) {
    return NotFound("no object: " + key);
  }
  StoreMetrics::Memory().gets->Add(1);
  StoreMetrics::Memory().bytes_read->Add(it->second->size());
  return it->second;  // reference to the cached allocation, no copy
}

bool MemoryStore::Contains(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.objects.count(key) > 0;
}

Result<uint64_t> MemoryStore::SizeOf(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.objects.find(key);
  if (it == shard.objects.end()) {
    return NotFound("no object: " + key);
  }
  return static_cast<uint64_t>(it->second->size());
}

Status MemoryStore::Delete(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.objects.find(key);
  if (it == shard.objects.end()) {
    return NotFound("no object: " + key);
  }
  used_.fetch_sub(it->second->size(), std::memory_order_relaxed);
  shard.objects.erase(it);
  return Status::Ok();
}

std::vector<std::string> MemoryStore::ListKeys() {
  std::vector<std::string> keys;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, value] : shard.objects) {
      keys.push_back(key);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

// --- DiskStore ---------------------------------------------------------------

DiskStore::DiskStore(std::string root, uint64_t capacity_bytes)
    : root_(std::move(root)), capacity_(capacity_bytes), shards_(kDefaultStoreShards) {}

Result<std::unique_ptr<DiskStore>> DiskStore::Open(const std::string& root,
                                                   uint64_t capacity_bytes) {
  std::error_code ec;
  fs::create_directories(root, ec);
  if (ec) {
    return Unavailable("cannot create store root " + root + ": " + ec.message());
  }
  auto store = std::unique_ptr<DiskStore>(new DiskStore(root, capacity_bytes));
  Status status = store->Rescan();
  if (!status.ok()) {
    return status;
  }
  return store;
}

Result<std::string> DiskStore::PathFor(const std::string& key) const {
  // Keys may contain '/'; they map to subdirectories. Components are
  // normalized (empty and "." components dropped, so leading slashes keep
  // keys inside the root) and ".." is rejected outright: a key must resolve
  // inside `root_`, never escape it.
  std::string clean;
  clean.reserve(key.size());
  size_t start = 0;
  while (start <= key.size()) {
    size_t end = key.find('/', start);
    if (end == std::string::npos) {
      end = key.size();
    }
    std::string_view comp(key.data() + start, end - start);
    if (!comp.empty() && comp != ".") {
      if (comp == "..") {
        return InvalidArgument("key escapes store root: " + key);
      }
      if (clean.empty() && (comp == kTmpDir || comp == kQuarantineDir)) {
        return InvalidArgument("key uses reserved store prefix: " + key);
      }
      if (!clean.empty()) {
        clean.push_back('/');
      }
      clean.append(comp);
    }
    start = end + 1;
  }
  if (clean.empty()) {
    return InvalidArgument("empty key");
  }
  return root_ + "/" + clean;
}

Status DiskStore::WriteObject(const std::string& path, std::span<const uint8_t> data,
                              bool crash_before_rename) {
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  if (ec) {
    return Unavailable("mkdir failed for " + path + ": " + ec.message());
  }
  const std::string tmp_dir = root_ + "/" + kTmpDir;
  fs::create_directories(tmp_dir, ec);
  if (ec) {
    return Unavailable("mkdir failed for " + tmp_dir + ": " + ec.message());
  }
  // Unique temp name; published (or abandoned, on crash) with one rename.
  const std::string tmp = StrFormat(
      "%s/%d-%llu.tmp", tmp_dir.c_str(), static_cast<int>(::getpid()),
      static_cast<unsigned long long>(tmp_seq_.fetch_add(1, std::memory_order_relaxed)));
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd < 0) {
    return Unavailable("cannot open " + tmp + " for writing: " + std::strerror(errno));
  }
  Status written = WriteAll(fd, data, tmp);
  if (written.ok()) {
    written = WriteAll(fd, MakeFooter(data), tmp);
  }
  if (written.ok() && ::fsync(fd) != 0) {
    written = Unavailable("fsync failed for " + tmp + ": " + std::strerror(errno));
  }
  ::close(fd);
  if (!written.ok()) {
    ::unlink(tmp.c_str());
    return written;
  }
  if (crash_before_rename) {
    // Fault injection: the payload is fully written but never published —
    // exactly the state a crash between write and rename leaves behind.
    // Rescan() sweeps the abandoned temp file.
    return Unavailable("injected crash before rename: " + path);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status status = Unavailable("rename failed for " + path + ": " + std::strerror(errno));
    ::unlink(tmp.c_str());
    return status;
  }
  return Status::Ok();
}

Status DiskStore::Put(const std::string& key, std::span<const uint8_t> data) {
  SAND_ASSIGN_OR_RETURN(std::string path, PathFor(key));
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.sizes.find(key);
  uint64_t existing = it != shard.sizes.end() ? it->second : 0;
  SAND_RETURN_IF_ERROR(ReserveDelta(used_, capacity_, data.size(), existing, "disk store"));
  Status written = WriteObject(path, data, /*crash_before_rename=*/false);
  if (!written.ok()) {
    // The rename never happened, so the old object (if any) is still the
    // visible file; restore its accounting.
    RollbackReserve(used_, data.size(), existing);
    return written;
  }
  StoreMetrics::Disk().puts->Add(1);
  StoreMetrics::Disk().bytes_written->Add(data.size());
  shard.sizes[key] = data.size();
  return Status::Ok();
}

Result<bool> DiskStore::PutIfAbsent(const std::string& key, std::span<const uint8_t> data) {
  SAND_ASSIGN_OR_RETURN(std::string path, PathFor(key));
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.sizes.count(key) > 0) {
    return false;
  }
  SAND_RETURN_IF_ERROR(ReserveDelta(used_, capacity_, data.size(), 0, "disk store"));
  Status written = WriteObject(path, data, /*crash_before_rename=*/false);
  if (!written.ok()) {
    RollbackReserve(used_, data.size(), 0);
    return written;
  }
  StoreMetrics::Disk().puts->Add(1);
  StoreMetrics::Disk().bytes_written->Add(data.size());
  shard.sizes[key] = data.size();
  return true;
}

Status DiskStore::PutCrashBeforeRename(const std::string& key, std::span<const uint8_t> data) {
  SAND_ASSIGN_OR_RETURN(std::string path, PathFor(key));
  Status written = WriteObject(path, data, /*crash_before_rename=*/true);
  // WriteObject never publishes in crash mode; visible state is untouched.
  return written.ok() ? Unavailable("crash injection did not fire: " + key) : written;
}

Result<SharedBytes> DiskStore::GetShared(const std::string& key) {
  SAND_ASSIGN_OR_RETURN(std::string path, PathFor(key));
  {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.sizes.find(key) == shard.sizes.end()) {
      return NotFound("no object: " + key);
    }
  }
  // Read outside the lock so different keys stream from disk in parallel.
  // The atomic-rename publish protocol makes this safe against a concurrent
  // overwrite: an opened file is always one complete object version (the
  // old inode survives until our descriptor closes), never a torn mix.
  std::optional<std::vector<uint8_t>> bytes = ReadFileBytes(path);
  if (!bytes.has_value()) {
    // The file vanished under us. Either a concurrent Delete won the race
    // (its shard-locked erase means the entry is gone once we re-check) —
    // a plain NotFound, not DataLoss — or the file is genuinely lost while
    // still indexed, in which case we drop the stale entry instead of
    // serving DataLoss forever.
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.sizes.find(key);
    if (it != shard.sizes.end()) {
      used_.fetch_sub(it->second, std::memory_order_relaxed);
      shard.sizes.erase(it);
      DiskQuarantined()->Add(1);
      SAND_LOG(kWarning) << "disk store dropped vanished object: " << key;
    }
    return NotFound("no object: " + key);
  }
  uint64_t payload_size = 0;
  if (!ValidateObjectBytes(*bytes, &payload_size)) {
    Quarantine(key, path, "footer/CRC verification failed");
    return NotFound("corrupt object quarantined: " + key);
  }
  bytes->resize(payload_size);
  StoreMetrics::Disk().gets->Add(1);
  StoreMetrics::Disk().bytes_read->Add(payload_size);
  return MakeSharedBytes(std::move(*bytes));
}

void DiskStore::Quarantine(const std::string& key, const std::string& path,
                           const char* reason) {
  {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.sizes.find(key);
    if (it != shard.sizes.end()) {
      used_.fetch_sub(it->second, std::memory_order_relaxed);
      shard.sizes.erase(it);
    }
    // Move the file while still holding the shard lock so a concurrent
    // Put's freshly renamed object cannot be swept aside between our erase
    // and the move.
    MoveToQuarantine(path);
  }
  SAND_LOG(kWarning) << "disk store quarantined " << key << ": " << reason;
}

void DiskStore::MoveToQuarantine(const std::string& path) {
  SAND_SPAN("disk_quarantine");
  std::error_code ec;
  const std::string dir = root_ + "/" + kQuarantineDir;
  fs::create_directories(dir, ec);
  std::string flat = fs::relative(path, root_, ec).generic_string();
  std::replace(flat.begin(), flat.end(), '/', '_');
  const std::string dest = StrFormat(
      "%s/%llu-%s", dir.c_str(),
      static_cast<unsigned long long>(tmp_seq_.fetch_add(1, std::memory_order_relaxed)),
      flat.c_str());
  fs::rename(path, dest, ec);
  if (ec) {
    fs::remove(path, ec);
  }
  DiskQuarantined()->Add(1);
}

bool DiskStore::Contains(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.sizes.count(key) > 0;
}

Result<uint64_t> DiskStore::SizeOf(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.sizes.find(key);
  if (it == shard.sizes.end()) {
    return NotFound("no object: " + key);
  }
  return it->second;
}

Status DiskStore::Delete(const std::string& key) {
  SAND_ASSIGN_OR_RETURN(std::string path, PathFor(key));
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.sizes.find(key);
  if (it == shard.sizes.end()) {
    return NotFound("no object: " + key);
  }
  std::error_code ec;
  fs::remove(path, ec);
  if (ec) {
    // The file is still there and still readable: leave the index and the
    // accounting untouched so state stays consistent, and let the caller
    // retry. Erasing here would leak the on-disk file and desync used_.
    return Unavailable("delete failed for " + key + ": " + ec.message());
  }
  // A false return (file already gone) still erases: the entry was stale.
  used_.fetch_sub(it->second, std::memory_order_relaxed);
  shard.sizes.erase(it);
  return Status::Ok();
}

std::vector<std::string> DiskStore::ListKeys() {
  std::vector<std::string> keys;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, size] : shard.sizes) {
      keys.push_back(key);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

Status DiskStore::Rescan() {
  // Recovery path: take every shard lock (in index order, so per-key ops
  // holding a single shard lock cannot deadlock against us), rebuild the
  // whole index from the directory tree atomically. Every candidate file's
  // CRC footer is verified — a half-written or bit-rotted survivor of a
  // crash is quarantined, never indexed — and temp files abandoned by a
  // crash-before-rename are swept.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (Shard& shard : shards_) {
    locks.emplace_back(shard.mutex);
    shard.sizes.clear();
  }
  const std::string tmp_prefix = std::string(kTmpDir) + "/";
  const std::string quarantine_prefix = std::string(kQuarantineDir) + "/";
  uint64_t used = 0;
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(root_, ec);
       !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
    std::error_code entry_ec;
    if (!it->is_regular_file(entry_ec)) {
      continue;
    }
    std::string rel = fs::relative(it->path(), root_, entry_ec).generic_string();
    if (rel.rfind(tmp_prefix, 0) == 0) {
      fs::remove(it->path(), entry_ec);  // abandoned mid-write temp file
      continue;
    }
    if (rel.rfind(quarantine_prefix, 0) == 0) {
      continue;  // already set aside; kept for post-mortem inspection
    }
    std::optional<std::vector<uint8_t>> bytes = ReadFileBytes(it->path().string());
    uint64_t payload_size = 0;
    if (!bytes.has_value() || !ValidateObjectBytes(*bytes, &payload_size)) {
      SAND_LOG(kWarning) << "rescan quarantined " << rel;
      MoveToQuarantine(it->path().string());
      continue;
    }
    ShardFor(rel).sizes[rel] = payload_size;
    used += payload_size;
  }
  used_.store(used, std::memory_order_relaxed);
  if (ec) {
    return Unavailable("rescan failed: " + ec.message());
  }
  return Status::Ok();
}

// --- RemoteStore -------------------------------------------------------------

RemoteStore::RemoteStore(std::shared_ptr<ObjectStore> backing, double bandwidth_bytes_per_sec,
                         Nanos latency_per_op)
    : backing_(std::move(backing)), bandwidth_(bandwidth_bytes_per_sec), latency_(latency_per_op) {}

void RemoteStore::ChargeTransfer(uint64_t bytes) {
  Nanos transfer = latency_;
  if (bandwidth_ > 0) {
    transfer += static_cast<Nanos>(static_cast<double>(bytes) / bandwidth_ * kNanosPerSecond);
  }
  if (transfer > 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(transfer));
  }
}

Status RemoteStore::Put(const std::string& key, std::span<const uint8_t> data) {
  ChargeTransfer(data.size());
  Status status = backing_->Put(key, data);
  if (status.ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    traffic_.bytes_written += data.size();
    ++traffic_.write_ops;
  }
  return status;
}

Result<bool> RemoteStore::PutIfAbsent(const std::string& key, std::span<const uint8_t> data) {
  ChargeTransfer(data.size());
  Result<bool> inserted = backing_->PutIfAbsent(key, data);
  if (inserted.ok() && *inserted) {
    std::lock_guard<std::mutex> lock(mutex_);
    traffic_.bytes_written += data.size();
    ++traffic_.write_ops;
  }
  return inserted;
}

Result<SharedBytes> RemoteStore::GetShared(const std::string& key) {
  Result<SharedBytes> result = backing_->GetShared(key);
  if (result.ok()) {
    ChargeTransfer((*result)->size());
    std::lock_guard<std::mutex> lock(mutex_);
    traffic_.bytes_read += (*result)->size();
    ++traffic_.read_ops;
  }
  return result;
}

bool RemoteStore::Contains(const std::string& key) { return backing_->Contains(key); }

Result<uint64_t> RemoteStore::SizeOf(const std::string& key) { return backing_->SizeOf(key); }

Status RemoteStore::Delete(const std::string& key) { return backing_->Delete(key); }

uint64_t RemoteStore::UsedBytes() { return backing_->UsedBytes(); }

uint64_t RemoteStore::CapacityBytes() { return backing_->CapacityBytes(); }

std::vector<std::string> RemoteStore::ListKeys() { return backing_->ListKeys(); }

RemoteTraffic RemoteStore::traffic() {
  std::lock_guard<std::mutex> lock(mutex_);
  return traffic_;
}

void RemoteStore::ResetTraffic() {
  std::lock_guard<std::mutex> lock(mutex_);
  traffic_ = RemoteTraffic{};
}

// --- TieredCache -------------------------------------------------------------

namespace {

inline const Status& StatusOf(const Status& status) { return status; }
template <typename T>
inline const Status& StatusOf(const Result<T>& result) {
  return result.status();
}

// Infrastructure failures worth retrying / tripping the breaker on. NotFound
// and capacity errors are healthy responses from a working tier.
inline bool TransientDiskError(const Status& status) {
  return status.code() == ErrorCode::kUnavailable || status.code() == ErrorCode::kDataLoss;
}

}  // namespace

TieredCache::TieredCache(std::shared_ptr<ObjectStore> memory, std::shared_ptr<ObjectStore> disk,
                         DiskFaultPolicy fault_policy)
    : memory_(std::move(memory)),
      disk_(std::move(disk)),
      fault_policy_(fault_policy),
      memory_hits_(obs::Registry::Get().GetCounter("sand.cache.memory.hits")),
      disk_hits_(obs::Registry::Get().GetCounter("sand.cache.disk.hits")),
      misses_(obs::Registry::Get().GetCounter("sand.cache.misses")),
      promotions_(obs::Registry::Get().GetCounter("sand.cache.promotions")),
      demotions_(obs::Registry::Get().GetCounter("sand.cache.demotions")),
      memory_puts_(obs::Registry::Get().GetCounter("sand.cache.memory.puts")),
      disk_puts_(obs::Registry::Get().GetCounter("sand.cache.disk.puts")),
      bytes_read_memory_(obs::Registry::Get().GetCounter("sand.cache.memory.bytes_read")),
      bytes_read_disk_(obs::Registry::Get().GetCounter("sand.cache.disk.bytes_read")),
      bytes_written_memory_(obs::Registry::Get().GetCounter("sand.cache.memory.bytes_written")),
      bytes_written_disk_(obs::Registry::Get().GetCounter("sand.cache.disk.bytes_written")),
      disk_retries_(obs::Registry::Get().GetCounter("sand.store.disk.retries")),
      demote_failures_(obs::Registry::Get().GetCounter("sand.cache.demote_failures")),
      peer_hits_(obs::Registry::Get().GetCounter("sand.cluster.peer_hits")),
      peer_misses_(obs::Registry::Get().GetCounter("sand.cluster.peer_misses")),
      peer_bytes_(obs::Registry::Get().GetCounter("sand.cluster.peer_bytes")),
      memory_used_(obs::Registry::Get().GetGauge("sand.cache.memory.used_bytes")),
      disk_used_(obs::Registry::Get().GetGauge("sand.cache.disk.used_bytes")),
      pinned_keys_(obs::Registry::Get().GetGauge("sand.cache.pinned_keys")),
      disk_degraded_gauge_(obs::Registry::Get().GetGauge("sand.store.disk.degraded")) {}

void TieredCache::UpdateUsageGauges() {
  memory_used_->Set(static_cast<int64_t>(memory_->UsedBytes()));
  disk_used_->Set(static_cast<int64_t>(disk_->UsedBytes()));
}

void TieredCache::SetPeerStore(std::shared_ptr<ObjectStore> peer) {
  std::lock_guard<std::mutex> lock(peer_mutex_);
  peer_ = std::move(peer);
}

bool TieredCache::has_peer() const {
  std::lock_guard<std::mutex> lock(peer_mutex_);
  return peer_ != nullptr;
}

std::shared_ptr<ObjectStore> TieredCache::PeerStore() const {
  std::lock_guard<std::mutex> lock(peer_mutex_);
  return peer_;
}

Result<SharedBytes> TieredCache::PeerOrMiss(const std::string& key,
                                            Result<SharedBytes> miss) {
  std::shared_ptr<ObjectStore> peer = PeerStore();
  if (peer == nullptr) {
    misses_->Add(1);
    return miss;
  }
  SAND_SPAN("peer_probe");
  Result<SharedBytes> fetched = peer->GetShared(key);
  if (fetched.ok()) {
    // The peer normally holds raw bytes, but a node running compressed
    // disk puts may have published an encoded container; undecodable
    // bytes read as a miss, never as corrupt data.
    Result<SharedBytes> decoded = MaybeDecode(*fetched);
    if (decoded.ok()) {
      peer_hits_->Add(1);
      peer_bytes_->Add((*decoded)->size());
      // Promote so the next read is a local memory hit (best-effort).
      if (memory_->PutShared(key, *decoded).ok()) {
        promotions_->Add(1);
        UpdateUsageGauges();
      }
      return decoded;
    }
  }
  // Peer miss, dead node (UNAVAILABLE via the ClusterStore's breaker), or
  // undecodable bytes: all read as a plain cache miss so the caller
  // recomputes locally instead of surfacing a cluster error to the job.
  peer_misses_->Add(1);
  misses_->Add(1);
  return miss;
}

void TieredCache::PublishToPeer(const std::string& key, SharedBytes data) {
  std::shared_ptr<ObjectStore> peer = PeerStore();
  if (peer == nullptr || data == nullptr) {
    return;
  }
  SAND_SPAN("peer_publish");
  // Best-effort: a dead or full owner node must never fail the local put.
  (void)peer->PutShared(key, std::move(data));
}

void TieredCache::SetCompression(const CompressionPolicy& policy, WorkerPool* pool) {
  std::shared_ptr<ObjectCodec> codec;
  if (policy.enabled) {
    codec = std::make_shared<ObjectCodec>(policy);
    // Shared-basis decode refetches the base object through the normal read
    // path (which decodes transparently, so the basis always comes from raw
    // frame bytes).
    codec->set_base_fetcher([this](const std::string& key) { return GetShared(key); });
  }
  {
    std::lock_guard<std::mutex> lock(codec_mutex_);
    codec_ = std::move(codec);
  }
  compress_pool_.store(policy.enabled ? pool : nullptr, std::memory_order_release);
  compression_on_.store(policy.enabled, std::memory_order_release);
}

void TieredCache::SetCompressionPool(WorkerPool* pool) {
  compress_pool_.store(pool, std::memory_order_release);
}

void TieredCache::NoteBaseObject(const std::string& key, const std::string& base_key) {
  if (auto codec = Codec()) {
    codec->NoteBaseObject(key, base_key);
  }
}

double TieredCache::CompressionRatio() const {
  auto codec = Codec();
  return codec ? codec->CumulativeRatio() : 1.0;
}

bool TieredCache::compresses_disk_puts() const {
  auto codec = Codec();
  return codec != nullptr && codec->policy().compress_on_disk_put;
}

std::shared_ptr<ObjectCodec> TieredCache::Codec() const {
  if (!compression_on_.load(std::memory_order_acquire)) {
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(codec_mutex_);
  return codec_;
}

std::optional<std::vector<uint8_t>> TieredCache::MaybeEncodeForDisk(
    const std::string& key, std::span<const uint8_t> data, Tier tier) {
  if (tier != Tier::kDisk) {
    return std::nullopt;
  }
  auto codec = Codec();
  if (!codec || !codec->policy().compress_on_disk_put) {
    return std::nullopt;
  }
  auto encoded = codec->Encode(key, data);
  if (!encoded.ok() || !encoded->has_value()) {
    // Encode trouble never fails a put; the object is stored raw.
    return std::nullopt;
  }
  return std::move((**encoded).bytes);
}

Result<SharedBytes> TieredCache::MaybeDecode(SharedBytes data) {
  if (!compression_on_.load(std::memory_order_acquire) ||
      !ObjectCodec::IsEncoded(std::span<const uint8_t>(*data))) {
    return data;
  }
  auto codec = Codec();
  if (!codec) {
    return data;
  }
  SAND_ASSIGN_OR_RETURN(std::vector<uint8_t> decoded,
                        codec->Decode(std::span<const uint8_t>(*data)));
  return MakeSharedBytes(std::move(decoded));
}

bool TieredCache::DiskAvailable() {
  if (!disk_offline_.load(std::memory_order_relaxed)) {
    return true;
  }
  const Nanos now = WallClock::Get().Now();
  Nanos probe_at = disk_probe_at_.load(std::memory_order_relaxed);
  while (now >= probe_at) {
    // Claim the probe slot: exactly one caller per reprobe interval gets to
    // test the tier; everyone else stays memory-only.
    if (disk_probe_at_.compare_exchange_weak(probe_at, now + fault_policy_.reprobe_interval,
                                             std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

void TieredCache::NoteDiskResult(bool healthy) {
  if (healthy) {
    disk_failure_streak_.store(0, std::memory_order_relaxed);
    if (disk_offline_.exchange(false, std::memory_order_relaxed)) {
      disk_degraded_gauge_->Set(0);
      SAND_LOG(kInfo) << "disk tier back online";
    }
    return;
  }
  const int streak = disk_failure_streak_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (streak >= fault_policy_.offline_threshold &&
      !disk_offline_.exchange(true, std::memory_order_relaxed)) {
    disk_degraded_gauge_->Set(1);
    disk_probe_at_.store(WallClock::Get().Now() + fault_policy_.reprobe_interval,
                         std::memory_order_relaxed);
    SAND_LOG(kWarning) << "disk tier marked offline after " << streak
                       << " consecutive failures; degrading to memory-only";
  } else if (disk_offline_.load(std::memory_order_relaxed)) {
    // A failed probe: push the next probe out a full interval.
    disk_probe_at_.store(WallClock::Get().Now() + fault_policy_.reprobe_interval,
                         std::memory_order_relaxed);
  }
}

template <typename Fn>
auto TieredCache::DiskOpWithRetry(Fn&& fn) -> decltype(fn()) {
  auto result = fn();
  Nanos backoff = fault_policy_.initial_backoff;
  for (int attempt = 0;
       attempt < fault_policy_.max_retries && TransientDiskError(StatusOf(result)); ++attempt) {
    SAND_SPAN("disk_retry");
    disk_retries_->Add(1);
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(backoff));
    }
    backoff = static_cast<Nanos>(static_cast<double>(backoff) * fault_policy_.backoff_multiplier);
    result = fn();
  }
  NoteDiskResult(!TransientDiskError(StatusOf(result)));
  return result;
}

Status TieredCache::Put(const std::string& key, std::span<const uint8_t> data, Tier tier) {
  Status status = PutLocal(key, data, tier);
  if (status.ok() && has_peer()) {
    PublishToPeer(key, MakeSharedBytes(std::vector<uint8_t>(data.begin(), data.end())));
  }
  return status;
}

Status TieredCache::PutShared(const std::string& key, SharedBytes data, Tier tier) {
  Status status = PutSharedLocal(key, data, tier);
  if (status.ok()) {
    PublishToPeer(key, std::move(data));
  }
  return status;
}

Result<bool> TieredCache::PutIfAbsent(const std::string& key, std::span<const uint8_t> data,
                                      Tier tier) {
  Result<bool> inserted = PutIfAbsentLocal(key, data, tier);
  if (inserted.ok() && *inserted && has_peer()) {
    PublishToPeer(key, MakeSharedBytes(std::vector<uint8_t>(data.begin(), data.end())));
  }
  return inserted;
}

Status TieredCache::PutLocal(const std::string& key, std::span<const uint8_t> data, Tier tier) {
  SAND_SPAN("store_put");
  const std::optional<std::vector<uint8_t>> encoded = MaybeEncodeForDisk(key, data, tier);
  const std::span<const uint8_t> disk_data =
      encoded ? std::span<const uint8_t>(*encoded) : data;
  if (tier == Tier::kMemory) {
    Status status = memory_->Put(key, data);
    if (status.ok()) {
      memory_puts_->Add(1);
      bytes_written_memory_->Add(data.size());
      UpdateUsageGauges();
      return status;
    }
    // Memory full: fall through to disk rather than failing the pipeline.
  }
  Status status = DiskAvailable()
                      ? DiskOpWithRetry([&] { return disk_->Put(key, disk_data); })
                      : Unavailable("disk tier offline: " + key);
  if (status.ok()) {
    disk_puts_->Add(1);
    bytes_written_disk_->Add(disk_data.size());
    UpdateUsageGauges();
    return status;
  }
  if (tier == Tier::kDisk && TransientDiskError(status)) {
    // Degraded mode: keep the pipeline alive in memory. The object simply
    // is not durable until the tier recovers. The encoded form is parked to
    // keep the footprint small; reads decode it transparently.
    Status fallback = memory_->Put(key, disk_data);
    if (fallback.ok()) {
      memory_puts_->Add(1);
      bytes_written_memory_->Add(disk_data.size());
      UpdateUsageGauges();
      return fallback;
    }
  }
  return status;
}

Status TieredCache::PutSharedLocal(const std::string& key, SharedBytes data, Tier tier) {
  SAND_SPAN("store_put");
  if (data == nullptr) {
    return InvalidArgument("PutShared: null buffer");
  }
  if (tier == Tier::kMemory) {
    Status status = memory_->PutShared(key, data);
    if (status.ok()) {
      memory_puts_->Add(1);
      bytes_written_memory_->Add(data->size());
      UpdateUsageGauges();
      return status;
    }
    // Memory full: fall through to disk rather than failing the pipeline.
  }
  const std::optional<std::vector<uint8_t>> encoded =
      MaybeEncodeForDisk(key, std::span<const uint8_t>(*data), tier);
  Status status =
      DiskAvailable()
          ? DiskOpWithRetry([&] {
              return encoded ? disk_->Put(key, std::span<const uint8_t>(*encoded))
                             : disk_->PutShared(key, data);
            })
          : Unavailable("disk tier offline: " + key);
  if (status.ok()) {
    disk_puts_->Add(1);
    bytes_written_disk_->Add(encoded ? encoded->size() : data->size());
    UpdateUsageGauges();
    return status;
  }
  if (tier == Tier::kDisk && TransientDiskError(status)) {
    Status fallback = memory_->PutShared(key, data);
    if (fallback.ok()) {
      memory_puts_->Add(1);
      bytes_written_memory_->Add(data->size());
      UpdateUsageGauges();
      return fallback;
    }
  }
  return status;
}

Result<bool> TieredCache::PutIfAbsentLocal(const std::string& key,
                                           std::span<const uint8_t> data, Tier tier) {
  SAND_SPAN("store_put");
  const std::optional<std::vector<uint8_t>> encoded = MaybeEncodeForDisk(key, data, tier);
  const std::span<const uint8_t> disk_data =
      encoded ? std::span<const uint8_t>(*encoded) : data;
  if (tier == Tier::kMemory) {
    Result<bool> inserted = memory_->PutIfAbsent(key, data);
    if (inserted.ok()) {
      if (*inserted) {
        memory_puts_->Add(1);
        bytes_written_memory_->Add(data.size());
        UpdateUsageGauges();
      }
      return inserted;
    }
    // Memory full: fall through to disk rather than failing the pipeline.
  }
  Result<bool> inserted =
      DiskAvailable()
          ? DiskOpWithRetry([&] { return disk_->PutIfAbsent(key, disk_data); })
          : Result<bool>(Unavailable("disk tier offline: " + key));
  if (inserted.ok()) {
    if (*inserted) {
      disk_puts_->Add(1);
      bytes_written_disk_->Add(disk_data.size());
      UpdateUsageGauges();
    }
    return inserted;
  }
  if (tier == Tier::kDisk && TransientDiskError(inserted.status())) {
    Result<bool> fallback = memory_->PutIfAbsent(key, disk_data);
    if (fallback.ok()) {
      if (*fallback) {
        memory_puts_->Add(1);
        bytes_written_memory_->Add(disk_data.size());
        UpdateUsageGauges();
      }
      return fallback;
    }
  }
  return inserted;
}

Status TieredCache::PutDisk(const std::string& key, std::span<const uint8_t> data) {
  SAND_SPAN("store_put");
  if (!DiskAvailable()) {
    return Unavailable("disk tier offline: " + key);
  }
  Status status = DiskOpWithRetry([&] { return disk_->Put(key, data); });
  if (status.ok()) {
    disk_puts_->Add(1);
    bytes_written_disk_->Add(data.size());
    UpdateUsageGauges();
  }
  return status;
}

Result<SharedBytes> TieredCache::GetShared(const std::string& key) {
  SAND_SPAN("store_get");
  Result<SharedBytes> hot = memory_->GetShared(key);
  if (hot.ok()) {
    memory_hits_->Add(1);
    bytes_read_memory_->Add((*hot)->size());
    // The hot tier normally holds raw bytes, but disk-offline degradation
    // can park an encoded object in memory; decode it on the way out.
    Result<SharedBytes> decoded = MaybeDecode(*hot);
    if (!decoded.ok()) {
      // Undecodable container (corrupt, or its shared-basis base is gone):
      // drop it and report a miss so the caller rematerializes.
      (void)Delete(key);
      return PeerOrMiss(key, NotFound("compressed object unreadable: " + key));
    }
    if (*decoded != *hot && memory_->PutShared(key, *decoded).ok()) {
      // Keep the hot tier raw so the next hit skips the decode.
      UpdateUsageGauges();
    }
    return decoded;
  }
  if (!DiskAvailable()) {
    // Degraded: a cold object reads as a miss after the peer probe (the
    // caller rematerializes), never as an error surfaced to the training
    // loop.
    return PeerOrMiss(key, NotFound("disk tier offline: " + key));
  }
  Result<SharedBytes> cold = DiskOpWithRetry([&] { return disk_->GetShared(key); });
  if (!cold.ok()) {
    // Third probe level: memory missed, disk missed — maybe another node
    // in the ring already materialized this object.
    return PeerOrMiss(key, std::move(cold));
  }
  disk_hits_->Add(1);
  bytes_read_disk_->Add((*cold)->size());
  Result<SharedBytes> decoded = MaybeDecode(*cold);
  if (!decoded.ok()) {
    (void)Delete(key);
    return PeerOrMiss(key, NotFound("compressed object unreadable: " + key));
  }
  // Best-effort promotion of the decoded bytes (the just-read buffer when
  // the object was stored raw); ignore failure (memory may be full).
  if (memory_->PutShared(key, *decoded).ok()) {
    promotions_->Add(1);
    UpdateUsageGauges();
  }
  return decoded;
}

Result<std::vector<uint8_t>> TieredCache::Get(const std::string& key) {
  SAND_ASSIGN_OR_RETURN(SharedBytes shared, GetShared(key));
  return std::vector<uint8_t>(shared->begin(), shared->end());
}

bool TieredCache::Contains(const std::string& key) {
  if (memory_->Contains(key)) {
    return true;
  }
  // No probe claim here: Contains has no error channel to report through,
  // so an offline tier just reads as "not cached".
  return !disk_offline_.load(std::memory_order_relaxed) && disk_->Contains(key);
}

void TieredCache::Pin(const std::string& key) {
  std::lock_guard<std::mutex> lock(pin_mutex_);
  ++pins_[key];
  pinned_keys_->Set(static_cast<int64_t>(pins_.size()));
}

void TieredCache::Unpin(const std::string& key) {
  std::lock_guard<std::mutex> lock(pin_mutex_);
  auto it = pins_.find(key);
  if (it == pins_.end()) {
    return;
  }
  if (--it->second <= 0) {
    pins_.erase(it);
  }
  pinned_keys_->Set(static_cast<int64_t>(pins_.size()));
}

bool TieredCache::IsPinned(const std::string& key) {
  std::lock_guard<std::mutex> lock(pin_mutex_);
  return pins_.count(key) > 0;
}

Status TieredCache::Delete(const std::string& key) {
  if (IsPinned(key)) {
    return FailedPrecondition("pinned: " + key);
  }
  bool any = false;
  if (memory_->Delete(key).ok()) {
    any = true;
  }
  if (DiskAvailable()) {
    if (DiskOpWithRetry([&] { return disk_->Delete(key); }).ok()) {
      any = true;
    }
  }
  // When the disk tier is offline its file (if any) stays behind; the
  // recovery Rescan picks it back up, which is safe — objects are
  // content-addressed by plan key.
  return any ? Status::Ok() : NotFound("no object: " + key);
}

Status TieredCache::Demote(const std::string& key) {
  if (IsPinned(key)) {
    return FailedPrecondition("pinned: " + key);
  }
  if (!DiskAvailable()) {
    return Unavailable("disk tier offline: cannot demote " + key);
  }
  if (Codec() != nullptr) {
    if (WorkerPool* pool = compress_pool_.load(std::memory_order_acquire)) {
      // Encode off the demand path; Demote returns as soon as the spill is
      // enqueued. A full queue falls back to the inline path below.
      if (pool->TrySubmit([this, key] {
            const Status status = DemoteCompressed(key);
            if (!status.ok() && status.code() != ErrorCode::kNotFound &&
                status.code() != ErrorCode::kFailedPrecondition) {
              demote_failures_->Add(1);
              SAND_LOG(kWarning) << "async demote of " << key
                                 << " failed: " << status.ToString();
            }
          })) {
        return Status::Ok();
      }
    }
  }
  return DemoteCompressed(key);
}

Status TieredCache::DemoteCompressed(const std::string& key) {
  // Re-checked here because the async path runs arbitrarily later than the
  // Demote call that enqueued it.
  if (IsPinned(key)) {
    return FailedPrecondition("pinned: " + key);
  }
  if (!DiskAvailable()) {
    return Unavailable("disk tier offline: cannot demote " + key);
  }
  SAND_ASSIGN_OR_RETURN(SharedBytes data, memory_->GetShared(key));
  std::span<const uint8_t> to_write(*data);
  std::vector<uint8_t> encoded;
  if (auto codec = Codec()) {
    auto enc = codec->Encode(key, to_write);
    if (enc.ok() && enc->has_value()) {
      encoded = std::move((**enc).bytes);
      to_write = encoded;
    }
    // Encode trouble never loses the object; it spills raw.
  }
  SAND_RETURN_IF_ERROR(DiskOpWithRetry([&] { return disk_->Put(key, to_write); }));
  {
    // Atomic against Pin: once a key is pinned, the hot copy stays resident
    // (the disk copy is then a harmless spare that reads identically).
    std::lock_guard<std::mutex> lock(pin_mutex_);
    if (pins_.count(key) > 0) {
      return Status::Ok();
    }
    (void)memory_->Delete(key);
  }
  demotions_->Add(1);
  bytes_written_disk_->Add(to_write.size());
  UpdateUsageGauges();
  return Status::Ok();
}

}  // namespace sand
