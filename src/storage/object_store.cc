#include "src/storage/object_store.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "src/common/strings.h"

namespace sand {

namespace fs = std::filesystem;

// --- MemoryStore -----------------------------------------------------------

MemoryStore::MemoryStore(uint64_t capacity_bytes) : capacity_(capacity_bytes) {}

Status MemoryStore::Put(const std::string& key, std::span<const uint8_t> data) {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t existing = 0;
  auto it = objects_.find(key);
  if (it != objects_.end()) {
    existing = it->second.size();
  }
  if (used_ - existing + data.size() > capacity_) {
    return ResourceExhausted(StrFormat("memory store over capacity (%llu + %zu > %llu)",
                                       static_cast<unsigned long long>(used_ - existing),
                                       data.size(),
                                       static_cast<unsigned long long>(capacity_)));
  }
  used_ = used_ - existing + data.size();
  objects_[key] = std::vector<uint8_t>(data.begin(), data.end());
  return Status::Ok();
}

Result<std::vector<uint8_t>> MemoryStore::Get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return NotFound("no object: " + key);
  }
  return it->second;
}

bool MemoryStore::Contains(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  return objects_.count(key) > 0;
}

Result<uint64_t> MemoryStore::SizeOf(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return NotFound("no object: " + key);
  }
  return static_cast<uint64_t>(it->second.size());
}

Status MemoryStore::Delete(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return NotFound("no object: " + key);
  }
  used_ -= it->second.size();
  objects_.erase(it);
  return Status::Ok();
}

uint64_t MemoryStore::UsedBytes() {
  std::lock_guard<std::mutex> lock(mutex_);
  return used_;
}

std::vector<std::string> MemoryStore::ListKeys() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> keys;
  keys.reserve(objects_.size());
  for (const auto& [key, value] : objects_) {
    keys.push_back(key);
  }
  return keys;
}

// --- DiskStore ---------------------------------------------------------------

DiskStore::DiskStore(std::string root, uint64_t capacity_bytes)
    : root_(std::move(root)), capacity_(capacity_bytes) {}

Result<std::unique_ptr<DiskStore>> DiskStore::Open(const std::string& root,
                                                   uint64_t capacity_bytes) {
  std::error_code ec;
  fs::create_directories(root, ec);
  if (ec) {
    return Unavailable("cannot create store root " + root + ": " + ec.message());
  }
  auto store = std::unique_ptr<DiskStore>(new DiskStore(root, capacity_bytes));
  Status status = store->Rescan();
  if (!status.ok()) {
    return status;
  }
  return store;
}

std::string DiskStore::PathFor(const std::string& key) const {
  // Keys may contain '/'; they map to subdirectories. Leading slashes are
  // stripped so keys remain inside the root.
  std::string clean;
  clean.reserve(key.size());
  for (char c : key) {
    if (clean.empty() && c == '/') {
      continue;
    }
    clean.push_back(c);
  }
  return root_ + "/" + clean;
}

Status DiskStore::Put(const std::string& key, std::span<const uint8_t> data) {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t existing = 0;
  auto it = sizes_.find(key);
  if (it != sizes_.end()) {
    existing = it->second;
  }
  if (used_ - existing + data.size() > capacity_) {
    return ResourceExhausted("disk store over capacity");
  }
  std::string path = PathFor(key);
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  if (ec) {
    return Unavailable("mkdir failed for " + path + ": " + ec.message());
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Unavailable("cannot open " + path + " for writing");
  }
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) {
    return DataLoss("short write to " + path);
  }
  used_ = used_ - existing + data.size();
  sizes_[key] = data.size();
  return Status::Ok();
}

Result<std::vector<uint8_t>> DiskStore::Get(const std::string& key) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (sizes_.find(key) == sizes_.end()) {
      return NotFound("no object: " + key);
    }
  }
  std::ifstream in(PathFor(key), std::ios::binary);
  if (!in) {
    return DataLoss("object file missing: " + key);
  }
  std::vector<uint8_t> data((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
  return data;
}

bool DiskStore::Contains(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  return sizes_.count(key) > 0;
}

Result<uint64_t> DiskStore::SizeOf(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sizes_.find(key);
  if (it == sizes_.end()) {
    return NotFound("no object: " + key);
  }
  return it->second;
}

Status DiskStore::Delete(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sizes_.find(key);
  if (it == sizes_.end()) {
    return NotFound("no object: " + key);
  }
  std::error_code ec;
  fs::remove(PathFor(key), ec);
  used_ -= it->second;
  sizes_.erase(it);
  return Status::Ok();
}

uint64_t DiskStore::UsedBytes() {
  std::lock_guard<std::mutex> lock(mutex_);
  return used_;
}

std::vector<std::string> DiskStore::ListKeys() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> keys;
  keys.reserve(sizes_.size());
  for (const auto& [key, size] : sizes_) {
    keys.push_back(key);
  }
  return keys;
}

Status DiskStore::Rescan() {
  std::lock_guard<std::mutex> lock(mutex_);
  sizes_.clear();
  used_ = 0;
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(root_, ec);
       !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (!it->is_regular_file(ec)) {
      continue;
    }
    std::string rel = fs::relative(it->path(), root_, ec).generic_string();
    uint64_t size = static_cast<uint64_t>(it->file_size(ec));
    sizes_[rel] = size;
    used_ += size;
  }
  if (ec) {
    return Unavailable("rescan failed: " + ec.message());
  }
  return Status::Ok();
}

// --- RemoteStore -------------------------------------------------------------

RemoteStore::RemoteStore(std::shared_ptr<ObjectStore> backing, double bandwidth_bytes_per_sec,
                         Nanos latency_per_op)
    : backing_(std::move(backing)), bandwidth_(bandwidth_bytes_per_sec), latency_(latency_per_op) {}

void RemoteStore::ChargeTransfer(uint64_t bytes) {
  Nanos transfer = latency_;
  if (bandwidth_ > 0) {
    transfer += static_cast<Nanos>(static_cast<double>(bytes) / bandwidth_ * kNanosPerSecond);
  }
  if (transfer > 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(transfer));
  }
}

Status RemoteStore::Put(const std::string& key, std::span<const uint8_t> data) {
  ChargeTransfer(data.size());
  Status status = backing_->Put(key, data);
  if (status.ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    traffic_.bytes_written += data.size();
    ++traffic_.write_ops;
  }
  return status;
}

Result<std::vector<uint8_t>> RemoteStore::Get(const std::string& key) {
  Result<std::vector<uint8_t>> result = backing_->Get(key);
  if (result.ok()) {
    ChargeTransfer(result->size());
    std::lock_guard<std::mutex> lock(mutex_);
    traffic_.bytes_read += result->size();
    ++traffic_.read_ops;
  }
  return result;
}

bool RemoteStore::Contains(const std::string& key) { return backing_->Contains(key); }

Result<uint64_t> RemoteStore::SizeOf(const std::string& key) { return backing_->SizeOf(key); }

Status RemoteStore::Delete(const std::string& key) { return backing_->Delete(key); }

uint64_t RemoteStore::UsedBytes() { return backing_->UsedBytes(); }

uint64_t RemoteStore::CapacityBytes() { return backing_->CapacityBytes(); }

std::vector<std::string> RemoteStore::ListKeys() { return backing_->ListKeys(); }

RemoteTraffic RemoteStore::traffic() {
  std::lock_guard<std::mutex> lock(mutex_);
  return traffic_;
}

void RemoteStore::ResetTraffic() {
  std::lock_guard<std::mutex> lock(mutex_);
  traffic_ = RemoteTraffic{};
}

// --- TieredCache -------------------------------------------------------------

TieredCache::TieredCache(std::shared_ptr<ObjectStore> memory, std::shared_ptr<ObjectStore> disk)
    : memory_(std::move(memory)), disk_(std::move(disk)) {}

Status TieredCache::Put(const std::string& key, std::span<const uint8_t> data, Tier tier) {
  if (tier == Tier::kMemory) {
    Status status = memory_->Put(key, data);
    if (status.ok()) {
      return status;
    }
    // Memory full: fall through to disk rather than failing the pipeline.
  }
  return disk_->Put(key, data);
}

Result<std::vector<uint8_t>> TieredCache::Get(const std::string& key) {
  Result<std::vector<uint8_t>> hot = memory_->Get(key);
  if (hot.ok()) {
    return hot;
  }
  Result<std::vector<uint8_t>> cold = disk_->Get(key);
  if (cold.ok()) {
    // Best-effort promotion; ignore failure (memory may be full).
    (void)memory_->Put(key, *cold);
  }
  return cold;
}

bool TieredCache::Contains(const std::string& key) {
  return memory_->Contains(key) || disk_->Contains(key);
}

Status TieredCache::Delete(const std::string& key) {
  bool any = false;
  if (memory_->Contains(key)) {
    (void)memory_->Delete(key);
    any = true;
  }
  if (disk_->Contains(key)) {
    (void)disk_->Delete(key);
    any = true;
  }
  return any ? Status::Ok() : NotFound("no object: " + key);
}

Status TieredCache::Demote(const std::string& key) {
  Result<std::vector<uint8_t>> data = memory_->Get(key);
  if (!data.ok()) {
    return data.status();
  }
  SAND_RETURN_IF_ERROR(disk_->Put(key, *data));
  return memory_->Delete(key);
}

}  // namespace sand
