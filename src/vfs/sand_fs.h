// SandFs: the POSIX-style view filesystem (paper §5.1, Tables 1-2).
//
// The paper mounts SAND through FUSE so unmodified applications reach views
// with open/read/getxattr/close. This repository keeps the identical verb
// surface and path grammar but serves it in-process: applications link the
// library and call SandFs, which forwards to a ViewProvider (the SAND core
// service) for materialization. Every training framework interaction in the
// examples and benches goes through this API only.
//
// Semantics:
//   Open("/{task}")                    -> session fd (task start signal)
//   Open("/{task}/{epoch}/{iter}/view")-> batch view fd
//   Open(frame / aug-frame paths)      -> intermediate object fd
//   Read/PRead(fd)                     -> materializes on first access, then
//                                         copies out of the object buffer
//   GetXattr(fd, name)                 -> view metadata (shape, timestamps)
//   Close(fd)                          -> releases the buffer (and signals
//                                         task end for session fds)
//
// Introspection views (served by SandFs itself, no provider round-trip —
// the observability layer exported "in true SAND style"):
//   Open("/.sand/metrics")             -> JSON snapshot of the global obs
//                                         registry (tools/sand_stat reads it)
//   Open("/.sand/trace")               -> Chrome trace-event JSON of the
//                                         span ring buffer
// Both snapshot at Open time; Read/PRead/ReadAll then behave like any view.

#ifndef SAND_VFS_SAND_FS_H_
#define SAND_VFS_SAND_FS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/graph/view.h"
#include "src/obs/metrics.h"

namespace sand {

// The materialization backend SandFs delegates to.
class ViewProvider {
 public:
  virtual ~ViewProvider() = default;

  // Produces (or fetches from cache) the object's bytes. Blocks until the
  // object is ready — this is the demand-feeding path.
  virtual Result<std::shared_ptr<const std::vector<uint8_t>>> Materialize(
      const ViewPath& path) = 0;

  // Metadata lookup (Table 2 getxattr).
  virtual Result<std::string> GetMetadata(const ViewPath& path, const std::string& name) = 0;

  // Task session lifecycle (the open/close task signals of §7.3).
  virtual Status OnSessionOpen(const std::string& task) = 0;
  virtual Status OnSessionClose(const std::string& task) = 0;

  // The object's fd was closed; the provider may release memory.
  virtual void OnViewClose(const ViewPath& path) { (void)path; }

  // readdir analogue: names under `path` ("/" lists tasks, "/{task}" lists
  // epochs and videos, ...). Optional; default: not supported.
  virtual Result<std::vector<std::string>> ListChildren(const std::string& path) {
    return Unavailable("listing not supported: " + path);
  }
};

struct SandFsStats {
  uint64_t opens = 0;
  uint64_t reads = 0;
  uint64_t closes = 0;
  uint64_t xattrs = 0;
  uint64_t bytes_read = 0;
};

class SandFs {
 public:
  // Prefix of the introspection namespace ("/.sand/...").
  static constexpr const char* kControlRoot = "/.sand";

  explicit SandFs(ViewProvider* provider);

  // Opens a view or session path; returns a file descriptor.
  Result<int> Open(const std::string& path);

  // Sequential read from the fd's cursor. Returns bytes copied; 0 at EOF.
  Result<size_t> Read(int fd, std::span<uint8_t> buffer);

  // Positional read.
  Result<size_t> PRead(int fd, std::span<uint8_t> buffer, uint64_t offset);

  // Reads the whole object (materializing if needed). Copies.
  Result<std::vector<uint8_t>> ReadAll(int fd);

  // Zero-copy variant: a reference to the fd's materialized buffer. The
  // buffer outlives Close(fd) for as long as the caller pins it; treat it
  // as immutable.
  Result<std::shared_ptr<const std::vector<uint8_t>>> ReadAllShared(int fd);

  // Size of the object behind fd (materializes if needed).
  Result<uint64_t> SizeOf(int fd);

  Result<std::string> GetXattr(int fd, const std::string& name);

  // Lists directory entries (readdir analogue), sorted.
  Result<std::vector<std::string>> ListDir(const std::string& path);

  Status Close(int fd);

  SandFsStats stats();

 private:
  struct FdEntry {
    bool is_session = false;
    bool is_control = false;  // /.sand/* fd; data snapshotted at Open
    std::string session_task;
    ViewPath path;
    uint64_t cursor = 0;
    std::shared_ptr<const std::vector<uint8_t>> data;  // after first access
  };

  // Ensures entry.data is materialized. Caller must NOT hold mutex_.
  Status EnsureData(int fd);

  // Serves Open("/.sand/<name>"); NotFound for unknown names.
  Result<int> OpenControl(const std::string& name);

  ViewProvider* provider_;
  std::mutex mutex_;
  std::map<int, FdEntry> fds_;
  int next_fd_ = 3;  // skip stdin/stdout/stderr numbers for familiarity
  SandFsStats stats_;

  // Registry mirrors ("sand.fs.*" in /.sand/metrics).
  obs::Counter* opens_;
  obs::Counter* reads_;
  obs::Counter* closes_;
  obs::Counter* xattrs_;
  obs::Counter* bytes_read_;
};

}  // namespace sand

#endif  // SAND_VFS_SAND_FS_H_
