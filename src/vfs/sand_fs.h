// SandFs: the POSIX-style view filesystem (paper §5.1, Tables 1-2).
//
// The paper mounts SAND through FUSE so unmodified applications reach views
// with open/read/getxattr/close. This repository keeps the identical verb
// surface and path grammar but serves it in-process: applications link the
// library and call SandFs, which forwards to a ViewProvider (the SAND core
// service) for materialization. Every training framework interaction in the
// examples and benches goes through this API only.
//
// Semantics:
//   Open("/{task}")                    -> session fd (task start signal)
//   Open("/{task}/{epoch}/{iter}/view")-> batch view fd
//   Open(frame / aug-frame paths)      -> intermediate object fd
//   Open(path, OpenOptions{...})       -> same, with per-fd readahead
//                                         window / pinning / O_NONBLOCK
//   Read/PRead(fd)                     -> materializes on first access, then
//                                         copies out of the object buffer
//   GetXattr(fd, name)                 -> view metadata (shape, timestamps)
//   Close(fd)                          -> releases the buffer (and signals
//                                         task end for session fds)
//
// The demand path is asynchronous underneath: first access resolves through
// ViewProvider::MaterializeAsync, and a per-task Prefetcher speculatively
// materializes the next batch views of the training stream (DESIGN.md §8)
// so steady-state reads find their data already in flight or done.
//
// Introspection views (served by SandFs itself, no provider round-trip —
// the observability layer exported "in true SAND style"):
//   Open("/.sand/metrics")             -> JSON snapshot of the global obs
//                                         registry (tools/sand_stat reads it)
//   Open("/.sand/trace")               -> Chrome trace-event JSON of the
//                                         span ring buffer (causally linked
//                                         per-request spans, DESIGN.md §12)
//   Open("/.sand/jobs/<tag>/metrics")  -> per-job slice of the registry
//                                         (tags = task names seen so far)
//   Open("/.sand/history")             -> ring-buffered time series of all
//                                         counters/gauges (HistoryRecorder)
//   Open("/.sand/health")              -> health/SLO verdict (HealthMonitor)
// All snapshot at Open time; Read/PRead/ReadAll then behave like any view.

#ifndef SAND_VFS_SAND_FS_H_
#define SAND_VFS_SAND_FS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/future.h"
#include "src/common/result.h"
#include "src/graph/view.h"
#include "src/obs/metrics.h"
#include "src/vfs/prefetcher.h"
#include "src/vfs/sand_api.h"

namespace sand {

// The materialization backend SandFs delegates to.
class ViewProvider {
 public:
  virtual ~ViewProvider() = default;

  // Produces (or fetches from cache) the object's bytes. Blocks until the
  // object is ready — this is the demand-feeding path.
  virtual Result<SharedBytes> Materialize(const ViewPath& path) = 0;

  // Asynchronous materialization: resolves to the object's bytes without
  // blocking the caller. `speculative` marks prefetcher readahead, which
  // providers schedule behind demand work and may refuse under load
  // (RESOURCE_EXHAUSTED). The default adapter wraps the synchronous path,
  // so every provider is usable from the async demand path; SandService
  // overrides this with a real worker-pool implementation.
  virtual Future<SharedBytes> MaterializeAsync(const ViewPath& path, bool speculative = false) {
    (void)speculative;
    return Future<SharedBytes>::FromResult(Materialize(path));
  }

  // Metadata lookup (Table 2 getxattr).
  virtual Result<std::string> GetMetadata(const ViewPath& path, const std::string& name) = 0;

  // Task session lifecycle (the open/close task signals of §7.3).
  virtual Status OnSessionOpen(const std::string& task) = 0;
  virtual Status OnSessionClose(const std::string& task) = 0;

  // A batch view reached the trainer. `from_prefetch` is true when the
  // bytes came from a speculative materialization rather than the demand
  // call — providers use this to advance progress tracking (next-chunk
  // planning, eviction bookkeeping) that otherwise rides on Materialize.
  virtual void OnViewServed(const ViewPath& path, bool from_prefetch) {
    (void)path;
    (void)from_prefetch;
  }

  // The object's fd was closed; the provider may release memory.
  virtual void OnViewClose(const ViewPath& path) { (void)path; }

  // readdir analogue: names under `path` ("/" lists tasks, "/{task}" lists
  // epochs and videos, ...). Optional; default: not supported.
  virtual Result<std::vector<std::string>> ListChildren(const std::string& path) {
    return Unavailable("listing not supported: " + path);
  }

  // Called before a /.sand control view snapshots: providers refresh
  // gauges that are derived state rather than metric writes (pool queue
  // depths, cache residency), so the snapshot is current. Optional.
  virtual void PublishObservability() {}
};

struct SandFsStats {
  uint64_t opens = 0;
  uint64_t reads = 0;
  uint64_t closes = 0;
  uint64_t xattrs = 0;
  uint64_t bytes_read = 0;
};

// The in-process SandApi backend: fds resolve directly against the
// ViewProvider, reads are zero-copy references to materialized buffers.
class SandFs : public SandApi {
 public:
  // Prefix of the introspection namespace ("/.sand/...").
  static constexpr const char* kControlRoot = "/.sand";

  // `prefetch` configures the readahead engine; the default (window = 0)
  // disables speculation, preserving the synchronous demand path.
  explicit SandFs(ViewProvider* provider, PrefetchOptions prefetch = {});

  using SandApi::Open;  // the options-free overload

  // Opens a view or session path; returns a file descriptor.
  Result<int> Open(const std::string& path, const OpenOptions& options) override;

  // Sequential read from the fd's cursor. Returns bytes copied; 0 at EOF.
  Result<size_t> Read(int fd, std::span<uint8_t> buffer) override;

  // Positional read.
  Result<size_t> PRead(int fd, std::span<uint8_t> buffer, uint64_t offset) override;

  // Zero-copy read: a reference to the fd's materialized buffer. The
  // buffer outlives Close(fd) for as long as the caller pins it; treat it
  // as immutable. (The copying ReadAll wrapper this surface once carried
  // was removed after the PR 3 deprecation cycle; see DESIGN.md §13.)
  Result<SharedBytes> ReadAllShared(int fd) override;

  // Size of the object behind fd (materializes if needed).
  Result<uint64_t> SizeOf(int fd) override;

  Result<std::string> GetXattr(int fd, const std::string& name) override;

  // Lists directory entries (readdir analogue), sorted.
  Result<std::vector<std::string>> ListDir(const std::string& path) override;

  Status Close(int fd) override;

  SandFsStats stats();

  // The readahead engine (prefetch hit/waste counters for benches/tests).
  Prefetcher& prefetcher() { return prefetcher_; }

  // Process-global registry of extra control views: subsystems that live
  // above the VFS (e.g. the cluster layer, which depends on net which
  // depends on vfs) publish "/.sand/<name>" without a layering cycle by
  // registering a renderer here. The renderer runs at Open and its output
  // is snapshotted into the control fd, exactly like the built-in views;
  // it must be thread-safe and must not call back into a SandFs.
  // Re-registering a name replaces the renderer; registering an empty
  // function unregisters it. Built-in names cannot be overridden.
  using ControlRenderer = std::function<std::string()>;
  static void RegisterControlView(const std::string& name, ControlRenderer renderer);

 private:
  struct FdEntry {
    bool is_session = false;
    bool is_control = false;  // /.sand/* fd; data snapshotted at Open
    std::string session_task;
    ViewPath path;
    OpenOptions options;
    uint64_t cursor = 0;
    SharedBytes data;             // after first access
    Future<SharedBytes> pending;  // in-flight materialization (nonblock)
    bool pending_from_prefetch = false;
  };

  // Ensures entry.data is materialized. Caller must NOT hold mutex_.
  // Returns UNAVAILABLE for a nonblock fd whose materialization is still
  // in flight.
  Status EnsureData(int fd);

  // Stores a finished materialization into the fd (if still open) and
  // fires the served/readahead notifications. Caller must NOT hold mutex_.
  Status CommitData(int fd, SharedBytes data, bool from_prefetch);

  // Serves Open("/.sand/...") given the components after ".sand";
  // NotFound for unknown names.
  Result<int> OpenControl(const std::vector<std::string>& parts);

  ViewProvider* provider_;
  Prefetcher prefetcher_;
  std::mutex mutex_;
  std::map<int, FdEntry> fds_;
  int next_fd_ = 3;  // skip stdin/stdout/stderr numbers for familiarity
  SandFsStats stats_;

  // Registry mirrors ("sand.fs.*" in /.sand/metrics).
  obs::Counter* opens_;
  obs::Counter* reads_;
  obs::Counter* closes_;
  obs::Counter* xattrs_;
  obs::Counter* bytes_read_;
  // Reader-observed wait per materializing access; the health monitor's
  // p99 SLO input.
  obs::Histogram* materialize_wait_ns_;
};

}  // namespace sand

#endif  // SAND_VFS_SAND_FS_H_
