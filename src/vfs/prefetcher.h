// Prefetcher: pipelined readahead for the demand-feeding path (§7.3).
//
// Training-loop access to batch views is perfectly predictable — the
// trainer walks /{task}/{epoch}/{iter}/view in order — so whenever the
// storage budget forces on-demand materialization, the next k views can be
// speculated while the trainer consumes the current one. The prefetcher
// watches the fd open/read sequence in SandFs: each demand access to a
// batch view triggers speculative ViewProvider::MaterializeAsync calls for
// the predicted successors of that task's stream.
//
// Admission control keeps speculation bounded:
//   - at most `max_inflight` speculative materializations at once
//   - estimated bytes (completed + in-flight, sized from the task's last
//     batch) stay under `budget_bytes`
//   - completed-but-unconsumed results live in a small LRU; overflow is
//     evicted as waste (the service keeps its own copy in the TieredCache,
//     so an evicted speculation can still be served as a cache hit)
//   - closing a task session cancels the task's speculations: results
//     arriving with a stale generation are discarded
//
// Epoch lengths are learned, not configured: a speculation that runs off
// the end of an epoch fails NotFound, teaching the prefetcher the task's
// iterations-per-epoch so later predictions wrap to the next epoch.
//
// Thread-safety: one mutex guards all state; provider calls are made
// outside the lock (speculations are reserved first so concurrent readers
// never double-issue).

#ifndef SAND_VFS_PREFETCHER_H_
#define SAND_VFS_PREFETCHER_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/future.h"
#include "src/graph/view.h"
#include "src/obs/metrics.h"

namespace sand {

class ViewProvider;

struct PrefetchOptions {
  // Readahead depth per task session. 0 disables prefetching (the default:
  // pre-materialization already hides the work when the budget allows it).
  int window = 0;
  // Admission control: concurrent speculative materializations.
  int max_inflight = 8;
  // Admission control: estimated bytes held by speculation (in-flight
  // estimates + completed results).
  uint64_t budget_bytes = 256ULL * 1024 * 1024;
  // Completed-but-unconsumed results kept before LRU eviction.
  size_t completed_capacity = 16;
};

struct PrefetchStats {
  uint64_t issued = 0;         // speculative materializations started
  uint64_t hits = 0;           // demand served from a completed speculation
  uint64_t hits_inflight = 0;  // demand attached to an in-flight speculation
  uint64_t misses = 0;         // prefetching on, but the view was not speculated
  uint64_t wasted = 0;         // speculated but never consumed (evicted/mispredicted)
  uint64_t cancelled = 0;      // dropped by session close
  uint64_t rejected = 0;       // admission-control refusals
};

class Prefetcher {
 public:
  Prefetcher(ViewProvider* provider, PrefetchOptions options);
  ~Prefetcher();

  // Sets the task's readahead window: -1 keeps the configured default,
  // 0 disables, >0 overrides (SandFs::OpenOptions::prefetch_window).
  void ConfigureSession(const std::string& task, int window);

  // Cancels the task's speculations (session close, §7.3 task-end signal).
  void OnSessionClose(const std::string& task);

  // Demand access to a batch view: predict and speculate the next views of
  // this task's stream. Must be called WITHOUT holding fs locks; provider
  // calls happen inside.
  void OnBatchAccess(const ViewPath& path);

  // Consumes a speculation for `path`: a ready future (completed hit), an
  // in-flight future (pipelined hit), or nullopt (miss — the caller
  // materializes on demand). Results pinned via PinResult are returned
  // without being consumed.
  std::optional<Future<SharedBytes>> Take(const ViewPath& path);

  // Keeps `data` for `path` beyond fd close, exempt from LRU eviction
  // (OpenOptions::pin). Dropped when the task's session closes.
  void PinResult(const ViewPath& path, SharedBytes data);

  PrefetchStats stats();
  size_t InFlight();

 private:
  struct Session {
    int window = 0;
    uint64_t generation = 0;
    int64_t iterations_per_epoch = -1;  // learned from end-of-epoch NotFound
    uint64_t last_batch_bytes = 0;      // byte estimate for admission control
  };

  struct Spec {
    std::string task;
    uint64_t generation = 0;
    int64_t epoch = 0;
    int64_t iteration = 0;
    uint64_t estimate = 0;
    Future<SharedBytes> future;  // invalid until issued
    bool consumed = false;       // a demand reader holds the future
  };

  struct Done {
    std::string task;
    uint64_t generation = 0;
    SharedBytes data;
    bool pinned = false;
  };

  void OnSpeculationDone(const std::string& key, const std::string& task, uint64_t generation,
                         const Result<SharedBytes>& result);
  // Caller holds mutex_. Total byte footprint of speculation.
  uint64_t FootprintLocked() const;
  // Caller holds mutex_. Evicts completed overflow (oldest unpinned first).
  void EvictCompletedLocked();

  ViewProvider* provider_;
  const PrefetchOptions options_;

  // Completion callbacks capture a weak reference to this token; a
  // speculation resolving after the prefetcher is destroyed (e.g. a
  // provider torn down with promises still parked) becomes a no-op
  // instead of touching freed state.
  std::shared_ptr<char> liveness_;

  std::mutex mutex_;
  std::map<std::string, Session> sessions_;
  std::map<std::string, Spec> inflight_;
  // LRU of completed results: front = oldest. Pinned entries are skipped
  // by eviction and survive Take.
  std::list<std::pair<std::string, Done>> completed_;
  std::map<std::string, std::list<std::pair<std::string, Done>>::iterator> completed_index_;
  PrefetchStats stats_;

  // Registry mirrors ("sand.prefetch.*" in /.sand/metrics).
  obs::Counter* issued_;
  obs::Counter* hits_;
  obs::Counter* hits_inflight_;
  obs::Counter* misses_;
  obs::Counter* wasted_;
  obs::Counter* cancelled_;
  obs::Counter* rejected_;
  obs::Gauge* inflight_gauge_;
};

}  // namespace sand

#endif  // SAND_VFS_PREFETCHER_H_
