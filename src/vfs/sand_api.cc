#include "src/vfs/sand_api.h"

namespace sand {
namespace {

// Wire tags. Never reuse a retired tag number; add new fields with new
// tags so old decoders skip them.
constexpr uint8_t kWireVersion = 1;
constexpr uint8_t kTagPrefetchWindow = 1;
constexpr uint8_t kTagPin = 2;
constexpr uint8_t kTagNonblock = 3;

void PutField(std::vector<uint8_t>& out, uint8_t tag, uint64_t value) {
  out.push_back(tag);
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<uint8_t>(value >> shift));
  }
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return value;
}

}  // namespace

Status OpenOptions::Validate() const {
  if (prefetch_window < -1) {
    return InvalidArgument("open options: prefetch_window < -1");
  }
  if (nonblock && prefetch_window > 0 && !pin) {
    return InvalidArgument(
        "open options: nonblock polling of speculative readahead "
        "(prefetch_window > 0) requires pin=true, or the result may be "
        "evicted between polls");
  }
  return Status::Ok();
}

std::vector<uint8_t> OpenOptions::Serialize() const {
  std::vector<uint8_t> out;
  out.push_back(kWireVersion);
  out.push_back(3);  // field count
  PutField(out, kTagPrefetchWindow, static_cast<uint64_t>(static_cast<int64_t>(prefetch_window)));
  PutField(out, kTagPin, pin ? 1 : 0);
  PutField(out, kTagNonblock, nonblock ? 1 : 0);
  return out;
}

Result<OpenOptions> OpenOptions::Deserialize(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < 2) {
    return InvalidArgument("open options: truncated header");
  }
  // Any version is acceptable: the field list is self-describing and
  // unknown tags are skipped. The byte exists so a future incompatible
  // layout can be detected instead of misparsed.
  if (bytes[0] == 0) {
    return InvalidArgument("open options: bad version 0");
  }
  size_t fields = bytes[1];
  if (bytes.size() != 2 + fields * 9) {
    return InvalidArgument("open options: truncated field list");
  }
  OpenOptions options;
  for (size_t i = 0; i < fields; ++i) {
    const uint8_t* field = bytes.data() + 2 + i * 9;
    uint64_t value = GetU64(field + 1);
    switch (field[0]) {
      case kTagPrefetchWindow:
        options.prefetch_window = static_cast<int>(static_cast<int64_t>(value));
        break;
      case kTagPin:
        options.pin = value != 0;
        break;
      case kTagNonblock:
        options.nonblock = value != 0;
        break;
      default:
        break;  // unknown field from a newer peer: tolerated
    }
  }
  SAND_RETURN_IF_ERROR(options.Validate());
  return options;
}

}  // namespace sand
