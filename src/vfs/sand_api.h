// SandApi: the client-facing SAND surface, transport-agnostic.
//
// The paper's abstraction is a filesystem: open a view path, read the
// bytes, ask for metadata, close. This interface captures exactly that
// verb set so a training loop (or bench, or tool) is written once against
// SandApi and runs unmodified over either backend:
//
//   SandFs      - in-process: calls straight into the ViewProvider
//                 (src/vfs/sand_fs.h)
//   SandClient  - remote: speaks the framed socket protocol to a
//                 SandServer, which fronts a SandFs in another process
//                 (src/net/sand_client.h)
//
// File descriptors are opaque ints scoped to the backend instance. All
// methods are thread-safe on both implementations. Errors use the shared
// Status space; notably RESOURCE_EXHAUSTED means "admission control
// refused this" on both transports (pool saturation in-process, tenant
// quota / backpressure over the wire) and is always retryable.

#ifndef SAND_VFS_SAND_API_H_
#define SAND_VFS_SAND_API_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/future.h"
#include "src/common/result.h"

namespace sand {

// Per-open knobs (the O_* analogue of Table 2's open flags).
//
// OpenOptions crosses the process boundary (SandClient sends it with every
// OPEN), so it has a versioned, unknown-field-tolerant wire form: each
// field is a (tag, u64 value) pair; decoders skip tags they don't know, so
// an old server accepts a new client's options and vice versa.
struct OpenOptions {
  // Readahead depth when this opens a task session: -1 keeps the fs-wide
  // default, 0 disables prefetching for the task, >0 speculates that many
  // upcoming batch views. Ignored for non-session paths.
  int prefetch_window = -1;
  // Keep the materialized result resident in the prefetcher beyond
  // Close(fd) (until the task session closes). For batch views re-read by
  // multiple consumers.
  bool pin = false;
  // O_NONBLOCK: first Read/ReadAll returns UNAVAILABLE while the object is
  // still materializing instead of blocking; poll until it succeeds.
  bool nonblock = false;

  // Rejects invalid combinations instead of silently ignoring them:
  //   - prefetch_window < -1 is meaningless
  //   - nonblock + prefetch_window > 0 + pin=false: a nonblock poller of
  //     speculative readahead must pin, or the prefetcher's LRU may drop
  //     the result between polls and the open can spin forever
  // Enforced by SandFs::Open and by the wire decoder, so both transports
  // fail identically (INVALID_ARGUMENT).
  Status Validate() const;

  // Wire form: u8 version | u8 field_count | field_count x (u8 tag,
  // u64 LE value). Unknown tags are skipped on decode (forward
  // compatible); missing tags keep their defaults (backward compatible).
  std::vector<uint8_t> Serialize() const;
  static Result<OpenOptions> Deserialize(const std::vector<uint8_t>& bytes);

  bool operator==(const OpenOptions& other) const {
    return prefetch_window == other.prefetch_window && pin == other.pin &&
           nonblock == other.nonblock;
  }
};

// The one-API-two-transports interface. Matches SandFs's historical
// surface method for method; see the SandFs header for per-verb
// semantics.
class SandApi {
 public:
  virtual ~SandApi() = default;

  Result<int> Open(const std::string& path) { return Open(path, OpenOptions{}); }
  virtual Result<int> Open(const std::string& path, const OpenOptions& options) = 0;

  // Sequential read from the fd's cursor. Returns bytes copied; 0 at EOF.
  virtual Result<size_t> Read(int fd, std::span<uint8_t> buffer) = 0;

  // Positional read.
  virtual Result<size_t> PRead(int fd, std::span<uint8_t> buffer, uint64_t offset) = 0;

  // The whole object as a shared immutable buffer. In-process this is the
  // materialized allocation itself (zero-copy); remote it is the one
  // receive buffer of the response (one copy, off the wire).
  virtual Result<SharedBytes> ReadAllShared(int fd) = 0;

  // Asynchronous bulk read: resolves to exactly what ReadAllShared(fd)
  // would return. The base adapter resolves synchronously (in-process
  // reads are already cache-speed); SandClient overrides it with a truly
  // pipelined implementation — many async reads issued back-to-back share
  // one connection and complete out of order, so a trainer overlaps its
  // next batches' wire latency with the current step. A refused request
  // (RESOURCE_EXHAUSTED) resolves the future with that status; retry with
  // backoff exactly as for the sync verb.
  virtual Future<SharedBytes> ReadAllSharedAsync(int fd) {
    return Future<SharedBytes>::FromResult(ReadAllShared(fd));
  }

  // Size of the object behind fd (materializes if needed).
  virtual Result<uint64_t> SizeOf(int fd) = 0;

  virtual Result<std::string> GetXattr(int fd, const std::string& name) = 0;

  // Lists directory entries (readdir analogue), sorted.
  virtual Result<std::vector<std::string>> ListDir(const std::string& path) = 0;

  virtual Status Close(int fd) = 0;
};

}  // namespace sand

#endif  // SAND_VFS_SAND_API_H_
