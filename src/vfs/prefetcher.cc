#include "src/vfs/prefetcher.h"

#include <algorithm>

#include "src/common/trace_context.h"
#include "src/obs/attribution.h"
#include "src/obs/trace.h"
#include "src/vfs/sand_fs.h"

namespace sand {

namespace {
// Byte estimate for a task whose batch size is not yet known (first
// speculation fires before any batch has completed).
constexpr uint64_t kDefaultBatchEstimate = 1ULL * 1024 * 1024;
}  // namespace

Prefetcher::Prefetcher(ViewProvider* provider, PrefetchOptions options)
    : provider_(provider),
      options_(options),
      liveness_(std::make_shared<char>(0)),
      issued_(obs::Registry::Get().GetCounter("sand.prefetch.issued")),
      hits_(obs::Registry::Get().GetCounter("sand.prefetch.hits")),
      hits_inflight_(obs::Registry::Get().GetCounter("sand.prefetch.hits_inflight")),
      misses_(obs::Registry::Get().GetCounter("sand.prefetch.misses")),
      wasted_(obs::Registry::Get().GetCounter("sand.prefetch.wasted")),
      cancelled_(obs::Registry::Get().GetCounter("sand.prefetch.cancelled")),
      rejected_(obs::Registry::Get().GetCounter("sand.prefetch.rejected")),
      inflight_gauge_(obs::Registry::Get().GetGauge("sand.prefetch.inflight")) {}

Prefetcher::~Prefetcher() {
  // Invalidate completion callbacks before members are torn down; late
  // speculation results (or broken promises from a dying provider) land in
  // a no-op instead of freed maps.
  liveness_.reset();
}

void Prefetcher::ConfigureSession(const std::string& task, int window) {
  std::lock_guard<std::mutex> lock(mutex_);
  Session& session = sessions_[task];
  session.window = window < 0 ? options_.window : window;
}

void Prefetcher::OnSessionClose(const std::string& task) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(task);
  if (it == sessions_.end()) {
    return;
  }
  // Session entries are never erased: the bumped generation is what marks
  // this task's in-flight speculations stale (their completions count as
  // cancelled exactly once, in OnSpeculationDone).
  ++it->second.generation;
  it->second.window = 0;
  for (auto cit = completed_.begin(); cit != completed_.end();) {
    if (cit->second.task == task) {
      completed_index_.erase(cit->first);
      cit = completed_.erase(cit);
      ++stats_.cancelled;
      cancelled_->Add(1);
    } else {
      ++cit;
    }
  }
}

void Prefetcher::OnBatchAccess(const ViewPath& path) {
  if (path.type != ViewType::kBatchView) {
    return;
  }
  SAND_SPAN("prefetch_plan");
  struct Issue {
    std::string key;
    ViewPath view;
    uint64_t generation;
  };
  std::vector<Issue> to_issue;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto sit = sessions_.find(path.task);
    if (sit == sessions_.end() || sit->second.window <= 0) {
      return;
    }
    Session& session = sit->second;
    int64_t epoch = path.epoch;
    int64_t iteration = path.iteration;
    for (int step = 0; step < session.window; ++step) {
      ++iteration;
      if (session.iterations_per_epoch > 0 && iteration >= session.iterations_per_epoch) {
        iteration = 0;
        ++epoch;
      }
      ViewPath next = ViewPath::Batch(path.task, epoch, iteration);
      std::string key = next.Format();
      if (inflight_.count(key) != 0 || completed_index_.count(key) != 0) {
        continue;  // already speculated
      }
      uint64_t estimate =
          session.last_batch_bytes > 0 ? session.last_batch_bytes : kDefaultBatchEstimate;
      if (inflight_.size() >= static_cast<size_t>(options_.max_inflight) ||
          FootprintLocked() + estimate > options_.budget_bytes) {
        ++stats_.rejected;
        rejected_->Add(1);
        continue;
      }
      Spec spec;
      spec.task = path.task;
      spec.generation = session.generation;
      spec.epoch = epoch;
      spec.iteration = iteration;
      spec.estimate = estimate;
      inflight_.emplace(key, std::move(spec));
      to_issue.push_back(Issue{std::move(key), next, session.generation});
    }
    inflight_gauge_->Set(static_cast<int64_t>(inflight_.size()));
  }
  // Provider calls happen outside the lock: the default synchronous adapter
  // resolves inline, which would re-enter OnSpeculationDone while we hold
  // mutex_. The inflight entry is already reserved, so concurrent demand
  // accesses cannot double-issue the same view.
  obs::JobMetrics* job = obs::JobMetricsFor(obs::JobRegistry::Get().Intern(path.task));
  for (Issue& issue : to_issue) {
    // Each speculative unit is its own trace root (kSpeculative class,
    // still attributed to the task): readahead work must be separable
    // from — not interleaved into — the demand flame that triggered it.
    TraceContext spec_ctx;
    spec_ctx.trace_id = NextTraceId();
    spec_ctx.job_id = obs::JobRegistry::Get().Intern(issue.view.task);
    spec_ctx.request_class = RequestClass::kSpeculative;
    ScopedTraceContext trace_scope(spec_ctx);
    SAND_SPAN("prefetch_issue");
    if (job != nullptr) {
      job->speculative_issued->Add(1);
    }
    Future<SharedBytes> future = provider_->MaterializeAsync(issue.view, /*speculative=*/true);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.issued;
      issued_->Add(1);
      auto it = inflight_.find(issue.key);
      if (it != inflight_.end()) {
        it->second.future = future;
      }
    }
    future.OnReady([this, alive = std::weak_ptr<char>(liveness_), key = issue.key,
                    task = issue.view.task,
                    generation = issue.generation](const Result<SharedBytes>& result) {
      if (auto live = alive.lock()) {
        OnSpeculationDone(key, task, generation, result);
      }
    });
  }
}

void Prefetcher::OnSpeculationDone(const std::string& key, const std::string& task,
                                   uint64_t generation, const Result<SharedBytes>& result) {
  std::lock_guard<std::mutex> lock(mutex_);
  bool consumed = false;
  int64_t iteration = -1;
  auto it = inflight_.find(key);
  if (it != inflight_.end()) {
    consumed = it->second.consumed;
    iteration = it->second.iteration;
    inflight_.erase(it);
  }
  inflight_gauge_->Set(static_cast<int64_t>(inflight_.size()));
  auto sit = sessions_.find(task);
  if (sit == sessions_.end() || sit->second.generation != generation) {
    ++stats_.cancelled;
    cancelled_->Add(1);
    return;
  }
  Session& session = sit->second;
  if (!result.ok()) {
    // Running off the end of an epoch fails NotFound at the first missing
    // iteration — which IS the epoch length. Later predictions wrap.
    if (result.status().code() == ErrorCode::kNotFound && iteration > 0) {
      session.iterations_per_epoch = iteration;
    }
    ++stats_.wasted;
    wasted_->Add(1);
    if (obs::JobMetrics* job = obs::JobMetricsFor(obs::JobRegistry::Get().Intern(task))) {
      job->speculative_wasted->Add(1);
    }
    return;
  }
  session.last_batch_bytes = (*result.value()).size();
  if (consumed) {
    return;  // a demand reader already holds the future (hit counted in Take)
  }
  Done done;
  done.task = task;
  done.generation = generation;
  done.data = result.value();
  completed_.push_back({key, std::move(done)});
  completed_index_[key] = std::prev(completed_.end());
  EvictCompletedLocked();
}

std::optional<Future<SharedBytes>> Prefetcher::Take(const ViewPath& path) {
  if (path.type != ViewType::kBatchView) {
    return std::nullopt;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  std::string key = path.Format();
  auto cit = completed_index_.find(key);
  if (cit != completed_index_.end()) {
    SharedBytes data = cit->second->second.data;
    if (!cit->second->second.pinned) {
      completed_.erase(cit->second);
      completed_index_.erase(cit);
    }
    ++stats_.hits;
    hits_->Add(1);
    return Future<SharedBytes>::FromResult(Result<SharedBytes>(std::move(data)));
  }
  auto iit = inflight_.find(key);
  if (iit != inflight_.end() && iit->second.future.valid() && !iit->second.consumed) {
    // Pipelined hit: attach the demand reader to the running speculation.
    // (A reserved-but-not-yet-issued entry has an invalid future and falls
    // through to the miss path; the cache below the provider dedupes.)
    iit->second.consumed = true;
    ++stats_.hits_inflight;
    hits_inflight_->Add(1);
    return iit->second.future;
  }
  auto sit = sessions_.find(path.task);
  if (sit != sessions_.end() && sit->second.window > 0) {
    ++stats_.misses;
    misses_->Add(1);
  }
  return std::nullopt;
}

void Prefetcher::PinResult(const ViewPath& path, SharedBytes data) {
  if (path.type != ViewType::kBatchView || data == nullptr) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  std::string key = path.Format();
  auto cit = completed_index_.find(key);
  if (cit != completed_index_.end()) {
    cit->second->second.pinned = true;
    return;
  }
  Done done;
  done.task = path.task;
  auto sit = sessions_.find(path.task);
  done.generation = sit != sessions_.end() ? sit->second.generation : 0;
  done.data = std::move(data);
  done.pinned = true;
  completed_.push_back({std::move(key), std::move(done)});
  completed_index_[completed_.back().first] = std::prev(completed_.end());
}

PrefetchStats Prefetcher::stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

size_t Prefetcher::InFlight() {
  std::lock_guard<std::mutex> lock(mutex_);
  return inflight_.size();
}

uint64_t Prefetcher::FootprintLocked() const {
  uint64_t total = 0;
  for (const auto& [key, spec] : inflight_) {
    total += spec.estimate;
  }
  for (const auto& [key, done] : completed_) {
    if (done.data != nullptr) {
      total += done.data->size();
    }
  }
  return total;
}

void Prefetcher::EvictCompletedLocked() {
  while (completed_.size() > options_.completed_capacity) {
    auto victim = completed_.end();
    for (auto it = completed_.begin(); it != completed_.end(); ++it) {
      if (!it->second.pinned) {
        victim = it;
        break;
      }
    }
    if (victim == completed_.end()) {
      return;  // everything pinned; capacity pressure yields to pins
    }
    std::string victim_task = victim->second.task;
    completed_index_.erase(victim->first);
    completed_.erase(victim);
    ++stats_.wasted;
    wasted_->Add(1);
    if (obs::JobMetrics* job =
            obs::JobMetricsFor(obs::JobRegistry::Get().Intern(victim_task))) {
      job->speculative_wasted->Add(1);
    }
  }
}

}  // namespace sand
