#include "src/vfs/sand_fs.h"

#include <algorithm>
#include <cstring>
#include <optional>
#include <utility>

#include "src/common/strings.h"
#include "src/common/threading.h"
#include "src/common/trace_context.h"
#include "src/obs/attribution.h"
#include "src/obs/health.h"
#include "src/obs/history.h"
#include "src/obs/trace.h"

namespace sand {

namespace {

// Registered extra control views ("/.sand/<name>"). Process-global like
// the obs registry the built-in views render from; a mutex-guarded map is
// fine because renderers only run on the cold control-open path.
struct ControlViewRegistry {
  std::mutex mutex;
  std::map<std::string, SandFs::ControlRenderer> renderers;

  static ControlViewRegistry& Get() {
    static ControlViewRegistry* registry = new ControlViewRegistry();
    return *registry;
  }
};

bool IsBuiltinControlName(const std::string& name) {
  return name == "health" || name == "history" || name == "jobs" ||
         name == "metrics" || name == "tenants" || name == "trace";
}

}  // namespace

void SandFs::RegisterControlView(const std::string& name, ControlRenderer renderer) {
  if (name.empty() || IsBuiltinControlName(name)) {
    return;
  }
  ControlViewRegistry& registry = ControlViewRegistry::Get();
  std::lock_guard<std::mutex> lock(registry.mutex);
  if (renderer) {
    registry.renderers[name] = std::move(renderer);
  } else {
    registry.renderers.erase(name);
  }
}

SandFs::SandFs(ViewProvider* provider, PrefetchOptions prefetch)
    : provider_(provider),
      prefetcher_(provider, prefetch),
      opens_(obs::Registry::Get().GetCounter("sand.fs.opens")),
      reads_(obs::Registry::Get().GetCounter("sand.fs.reads")),
      closes_(obs::Registry::Get().GetCounter("sand.fs.closes")),
      xattrs_(obs::Registry::Get().GetCounter("sand.fs.xattrs")),
      bytes_read_(obs::Registry::Get().GetCounter("sand.fs.bytes_read")),
      materialize_wait_ns_(obs::Registry::Get().GetHistogram("sand.fs.materialize_wait_ns")) {}

Result<int> SandFs::OpenControl(const std::vector<std::string>& parts) {
  // Derived gauges (pool depths, cache residency) are provider state, not
  // metric writes; let it publish them before we snapshot.
  provider_->PublishObservability();
  std::string body;
  const std::string& name = parts[0];
  if (parts.size() == 1 && name == "metrics") {
    body = obs::Registry::Get().ToJson();
  } else if (parts.size() == 1 && name == "trace") {
    body = obs::Tracer::Get().ToChromeJson();
  } else if (parts.size() == 1 && name == "health") {
    body = obs::HealthMonitor::Get().EvaluateToJson();
  } else if (parts.size() == 1 && name == "history") {
    body = obs::HistoryRecorder::Get().ToJson();
  } else if (parts.size() == 3 && name == "jobs" && parts[2] == "metrics") {
    // "/.sand/jobs/<tag>/metrics": the job's slice of the registry with
    // the "sand.job.<tag>." prefix stripped back off.
    const std::string& tag = parts[1];
    bool known = false;
    for (const std::string& t : obs::JobRegistry::Get().Tags()) {
      if (t == tag) {
        known = true;
        break;
      }
    }
    if (!known) {
      return NotFound(std::string("no job: ") + kControlRoot + "/jobs/" + tag);
    }
    body = obs::Registry::Get().ToJson("sand.job." + tag + ".", /*strip_prefix=*/true);
  } else if (parts.size() == 3 && name == "tenants" && parts[2] == "metrics") {
    // "/.sand/tenants/<tag>/metrics": the tenant's registry slice — the
    // socket front-end's per-tenant sessions/requests/rejections/bytes
    // plus whatever the scheduler attributed to it.
    const std::string& tag = parts[1];
    bool known = false;
    for (const std::string& t : obs::TenantRegistry::Get().Tags()) {
      if (t == tag) {
        known = true;
        break;
      }
    }
    if (!known) {
      return NotFound(std::string("no tenant: ") + kControlRoot + "/tenants/" + tag);
    }
    body = obs::Registry::Get().ToJson("sand.tenant." + tag + ".", /*strip_prefix=*/true);
  } else {
    // Registered views last: built-in names always win, and the renderer
    // runs outside the registry lock (it may be slow — e.g. the cluster
    // layer probing peer health).
    ControlRenderer renderer;
    if (parts.size() == 1) {
      ControlViewRegistry& registry = ControlViewRegistry::Get();
      std::lock_guard<std::mutex> lock(registry.mutex);
      auto it = registry.renderers.find(name);
      if (it != registry.renderers.end()) {
        renderer = it->second;
      }
    }
    if (!renderer) {
      std::string joined = parts[0];
      for (size_t i = 1; i < parts.size(); ++i) {
        joined += "/" + parts[i];
      }
      return NotFound(std::string("no control view: ") + kControlRoot + "/" + joined);
    }
    body = renderer();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  int fd = next_fd_++;
  FdEntry entry;
  entry.is_control = true;
  entry.data = std::make_shared<const std::vector<uint8_t>>(body.begin(), body.end());
  fds_[fd] = std::move(entry);
  ++stats_.opens;
  opens_->Add(1);
  return fd;
}

Result<int> SandFs::Open(const std::string& path, const OpenOptions& options) {
  if (path.empty() || path.front() != '/') {
    return InvalidArgument("open: path must be absolute: " + path);
  }
  SAND_RETURN_IF_ERROR(options.Validate());
  // "/{task}" with no further components is a session handle.
  std::vector<std::string> parts = Split(std::string_view(path).substr(1), '/');
  // The introspection namespace is served by the fs itself: the metrics
  // snapshot, trace dump, per-job slices, history, and health verdict are
  // views like everything else in SAND.
  if (parts.size() >= 2 && parts[0] == ".sand") {
    return OpenControl(std::vector<std::string>(parts.begin() + 1, parts.end()));
  }
  if (parts.size() == 1 && parts[0] == ".sand") {
    return InvalidArgument("open: /.sand is a directory (use ListDir)");
  }
  if (parts.size() == 1 && !parts[0].empty()) {
    SAND_RETURN_IF_ERROR(provider_->OnSessionOpen(parts[0]));
    prefetcher_.ConfigureSession(parts[0], options.prefetch_window);
    std::lock_guard<std::mutex> lock(mutex_);
    int fd = next_fd_++;
    FdEntry entry;
    entry.is_session = true;
    entry.session_task = parts[0];
    entry.options = options;
    fds_[fd] = std::move(entry);
    ++stats_.opens;
    opens_->Add(1);
    return fd;
  }
  SAND_ASSIGN_OR_RETURN(ViewPath view, ViewPath::Parse(path));
  int fd = -1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fd = next_fd_++;
    FdEntry entry;
    entry.path = view;
    entry.options = options;
    fds_[fd] = std::move(entry);
    ++stats_.opens;
    opens_->Add(1);
  }
  if (options.nonblock) {
    // O_NONBLOCK: start the materialization pipeline at open so the first
    // poll can already find it in flight (or done).
    bool from_prefetch = false;
    Future<SharedBytes> pending;
    std::optional<Future<SharedBytes>> taken = prefetcher_.Take(view);
    if (taken.has_value()) {
      pending = *taken;
      from_prefetch = true;
    } else {
      pending = provider_->MaterializeAsync(view, /*speculative=*/false);
    }
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = fds_.find(fd);
    if (it != fds_.end()) {
      it->second.pending = std::move(pending);
      it->second.pending_from_prefetch = from_prefetch;
    }
  }
  return fd;
}

Status SandFs::EnsureData(int fd) {
  ViewPath path;
  bool nonblock = false;
  bool from_prefetch = false;
  Future<SharedBytes> pending;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = fds_.find(fd);
    if (it == fds_.end()) {
      return InvalidArgument(StrFormat("bad fd %d", fd));
    }
    if (it->second.is_session) {
      return InvalidArgument("read on a session fd");
    }
    if (it->second.data != nullptr) {
      return Status::Ok();
    }
    path = it->second.path;
    nonblock = it->second.options.nonblock;
    pending = it->second.pending;  // shared handle; valid once issued
    from_prefetch = it->second.pending_from_prefetch;
  }
  // This access materializes: it is a demand request entry. Root a trace
  // here (continuing any enclosing one) and attribute everything the
  // request causes — pool tasks, decode slices, rpc round trips — to the
  // task as job. Every span below parents under "fs_ensure_data".
  uint32_t job_id = obs::JobRegistry::Get().Intern(path.task);
  ScopedTraceContext trace_scope(BeginRequestContext(job_id, RequestClass::kDemand));
  SAND_SPAN("fs_ensure_data");
  Nanos wait_start = SinceProcessStart();
  if (!pending.valid()) {
    // First access: consume a speculation if the prefetcher has (or is
    // computing) this view, else issue a demand materialization. Both run
    // outside mutex_ — this may block on preprocessing.
    std::optional<Future<SharedBytes>> taken = prefetcher_.Take(path);
    if (taken.has_value()) {
      pending = *taken;
      from_prefetch = true;
    } else {
      pending = provider_->MaterializeAsync(path, /*speculative=*/false);
    }
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = fds_.find(fd);
    if (it != fds_.end()) {
      it->second.pending = pending;
      it->second.pending_from_prefetch = from_prefetch;
    }
  }
  if (nonblock && !pending.Ready()) {
    return Unavailable("materialization in flight: " + path.Format());
  }
  Result<SharedBytes> result = pending.Get();
  if (!result.ok()) {
    return result.status();
  }
  SharedBytes data = result.TakeValue();
  uint64_t waited = static_cast<uint64_t>(SinceProcessStart() - wait_start);
  materialize_wait_ns_->Record(waited);
  if (obs::JobMetrics* job = obs::JobMetricsFor(job_id)) {
    job->materialize_wait_ns->Record(waited);
    job->reads->Add(1);
    job->bytes_read->Add(data->size());
  }
  return CommitData(fd, std::move(data), from_prefetch);
}

Status SandFs::CommitData(int fd, SharedBytes data, bool from_prefetch) {
  ViewPath path;
  bool is_batch = false;
  bool pin = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = fds_.find(fd);
    if (it == fds_.end()) {
      return InvalidArgument(StrFormat("fd %d closed during read", fd));
    }
    if (it->second.data == nullptr) {
      it->second.data = data;
      it->second.pending = Future<SharedBytes>();
    }
    path = it->second.path;
    is_batch = path.type == ViewType::kBatchView;
    pin = it->second.options.pin;
  }
  if (is_batch) {
    // Outside mutex_: the served notification and the readahead planning
    // both call back into provider/prefetcher locks.
    provider_->OnViewServed(path, from_prefetch);
    if (pin) {
      prefetcher_.PinResult(path, data);
    }
    prefetcher_.OnBatchAccess(path);
  }
  return Status::Ok();
}

Result<size_t> SandFs::Read(int fd, std::span<uint8_t> buffer) {
  SAND_RETURN_IF_ERROR(EnsureData(fd));
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return InvalidArgument(StrFormat("bad fd %d", fd));
  }
  FdEntry& entry = it->second;
  const std::vector<uint8_t>& data = *entry.data;
  if (entry.cursor >= data.size()) {
    return static_cast<size_t>(0);
  }
  size_t count = std::min(buffer.size(), data.size() - static_cast<size_t>(entry.cursor));
  std::memcpy(buffer.data(), data.data() + entry.cursor, count);
  entry.cursor += count;
  ++stats_.reads;
  stats_.bytes_read += count;
  reads_->Add(1);
  bytes_read_->Add(count);
  return count;
}

Result<size_t> SandFs::PRead(int fd, std::span<uint8_t> buffer, uint64_t offset) {
  SAND_RETURN_IF_ERROR(EnsureData(fd));
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return InvalidArgument(StrFormat("bad fd %d", fd));
  }
  const std::vector<uint8_t>& data = *it->second.data;
  if (offset >= data.size()) {
    return static_cast<size_t>(0);
  }
  size_t count = std::min(buffer.size(), data.size() - static_cast<size_t>(offset));
  std::memcpy(buffer.data(), data.data() + offset, count);
  ++stats_.reads;
  stats_.bytes_read += count;
  reads_->Add(1);
  bytes_read_->Add(count);
  return count;
}

Result<SharedBytes> SandFs::ReadAllShared(int fd) {
  SAND_RETURN_IF_ERROR(EnsureData(fd));
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return InvalidArgument(StrFormat("bad fd %d", fd));
  }
  ++stats_.reads;
  stats_.bytes_read += it->second.data->size();
  reads_->Add(1);
  bytes_read_->Add(it->second.data->size());
  return it->second.data;
}

Result<uint64_t> SandFs::SizeOf(int fd) {
  SAND_RETURN_IF_ERROR(EnsureData(fd));
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return InvalidArgument(StrFormat("bad fd %d", fd));
  }
  return static_cast<uint64_t>(it->second.data->size());
}

Result<std::string> SandFs::GetXattr(int fd, const std::string& name) {
  ViewPath path;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = fds_.find(fd);
    if (it == fds_.end()) {
      return InvalidArgument(StrFormat("bad fd %d", fd));
    }
    if (it->second.is_session) {
      return InvalidArgument("getxattr on a session fd");
    }
    if (it->second.is_control) {
      return InvalidArgument("getxattr on a control fd");
    }
    path = it->second.path;
    ++stats_.xattrs;
    xattrs_->Add(1);
  }
  return provider_->GetMetadata(path, name);
}

Result<std::vector<std::string>> SandFs::ListDir(const std::string& path) {
  if (path.empty() || path.front() != '/') {
    return InvalidArgument("listdir: path must be absolute: " + path);
  }
  if (path == kControlRoot || path == std::string(kControlRoot) + "/") {
    std::vector<std::string> entries{"health", "history", "jobs",
                                     "metrics", "tenants", "trace"};
    {
      ControlViewRegistry& registry = ControlViewRegistry::Get();
      std::lock_guard<std::mutex> lock(registry.mutex);
      for (const auto& [name, renderer] : registry.renderers) {
        entries.push_back(name);
      }
    }
    std::sort(entries.begin(), entries.end());
    return entries;
  }
  if (path == std::string(kControlRoot) + "/jobs") {
    return obs::JobRegistry::Get().Tags();  // already sorted
  }
  if (path.rfind(std::string(kControlRoot) + "/jobs/", 0) == 0) {
    return std::vector<std::string>{"metrics"};
  }
  if (path == std::string(kControlRoot) + "/tenants") {
    return obs::TenantRegistry::Get().Tags();  // already sorted
  }
  if (path.rfind(std::string(kControlRoot) + "/tenants/", 0) == 0) {
    return std::vector<std::string>{"metrics"};
  }
  SAND_ASSIGN_OR_RETURN(std::vector<std::string> children, provider_->ListChildren(path));
  std::sort(children.begin(), children.end());
  return children;
}

Status SandFs::Close(int fd) {
  FdEntry entry;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = fds_.find(fd);
    if (it == fds_.end()) {
      return InvalidArgument(StrFormat("bad fd %d", fd));
    }
    entry = std::move(it->second);
    fds_.erase(it);
    ++stats_.closes;
    closes_->Add(1);
  }
  if (entry.is_session) {
    // Cancel the task's speculation before the provider tears the session
    // down (§7.3 task-end signal).
    prefetcher_.OnSessionClose(entry.session_task);
    return provider_->OnSessionClose(entry.session_task);
  }
  if (entry.is_control) {
    return Status::Ok();  // nothing provider-side to release
  }
  provider_->OnViewClose(entry.path);
  return Status::Ok();
}

SandFsStats SandFs::stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace sand
